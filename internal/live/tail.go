package live

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"taskprov/internal/darshan"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
)

// ReplayBroker feeds every provenance event already on the broker through
// the aggregator, walking each topic partition by partition in offset order
// — the canonical deterministic order the equivalence invariant is defined
// against.
func ReplayBroker(b *mofka.Broker, agg *Aggregator) error {
	for _, topic := range provenance.AllTopics() {
		t, err := b.OpenTopic(topic)
		if err != nil {
			continue // topic never created on this broker
		}
		for p := 0; p < t.Partitions(); p++ {
			c, err := t.NewConsumer(mofka.ConsumerOptions{NoData: true, Partitions: []int{p}})
			if err != nil {
				return fmt.Errorf("live: replay %s[%d]: %w", topic, p, err)
			}
			evs, err := c.Drain()
			if err != nil {
				return fmt.Errorf("live: replay %s[%d]: %w", topic, p, err)
			}
			for _, ev := range evs {
				agg.IngestEvent(topic, ev.Partition, provenance.MustParse(ev))
			}
		}
	}
	return nil
}

// dirMetadata is the slice of the run's metadata.json the tailer needs. The
// full provenance chart lives in internal/core; parsing a projection here
// keeps live a leaf package.
type dirMetadata struct {
	Workflow    string  `json:"workflow"`
	Seed        uint64  `json:"seed"`
	WallSeconds float64 `json:"wall_seconds"`
	Job         struct {
		Nodes            int `json:"nodes"`
		WorkersPerNode   int `json:"workers_per_node"`
		ThreadsPerWorker int `json:"threads_per_worker"`
	} `json:"job"`
}

// ReplayDataDir builds live aggregates post-mortem from a durable Mofka data
// directory: the WAL segments replay through a fresh aggregator, and
// whatever else the directory offers (metadata.json, darshan/*.darshan) is
// folded in. Safe on the data dir of a crashed (kill -9) run: the WAL opens
// read-only and torn tails are skipped, not truncated.
func ReplayDataDir(dir string, opts AggregatorOptions) (Summary, error) {
	b, err := mofka.OpenPostMortem(dir)
	if err != nil {
		return Summary{}, fmt.Errorf("live: open %s: %w", dir, err)
	}
	agg := NewAggregator(opts)
	if err := ReplayBroker(b, agg); err != nil {
		return Summary{}, err
	}
	if raw, err := os.ReadFile(filepath.Join(dir, "metadata.json")); err == nil {
		var meta dirMetadata
		if err := json.Unmarshal(raw, &meta); err != nil {
			return Summary{}, fmt.Errorf("live: %s/metadata.json: %w", dir, err)
		}
		slots := meta.Job.Nodes * meta.Job.WorkersPerNode * meta.Job.ThreadsPerWorker
		agg.SetMeta(meta.Workflow, meta.Seed, slots)
		agg.SetWall(meta.WallSeconds)
	}
	logs, err := filepath.Glob(filepath.Join(dir, "darshan", "*.darshan"))
	if err != nil {
		return Summary{}, err
	}
	for _, p := range logs {
		f, err := os.Open(p)
		if err != nil {
			return Summary{}, err
		}
		l, err := darshan.ReadLog(f)
		_ = f.Close()
		if err != nil {
			return Summary{}, fmt.Errorf("live: %s: %w", p, err)
		}
		agg.IngestDarshanLog(l)
	}
	return agg.Snapshot(), nil
}

// TailOptions configures a tailer.
type TailOptions struct {
	// Interval between refreshes. Default 1s.
	Interval time.Duration
	// Aggregator tunes windows and detectors.
	Aggregator AggregatorOptions
	// Logf receives one-line refresh failures (transient while a run is
	// mid-write).
	Logf func(format string, args ...any)
}

func (o TailOptions) withDefaults() TailOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	return o
}

// WALTailer follows a durable data dir as it grows by rebuilding the
// aggregates from the WAL on every refresh. Each refresh is a full replay —
// O(log size) per tick, the price of staying read-only against a directory
// another process is actively writing (no shared cursor state, no risk of
// perturbing the run). For the paper-scale logs this is milliseconds; for
// production-scale logs attach to the broker with a RemoteTailer instead.
type WALTailer struct {
	dir  string
	opts TailOptions

	mu    sync.Mutex
	last  Summary
	err   error
	seen  int // anomalies already forwarded to subscribers
	subs  []chan Anomaly
	ready bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// TailWAL starts tailing a data dir. The first refresh happens synchronously
// so the returned tailer always serves a real snapshot (the refresh error,
// if any, is surfaced; a dir mid-first-write may legitimately be empty).
func TailWAL(dir string, opts TailOptions) (*WALTailer, error) {
	if !mofka.IsDataDir(dir) {
		return nil, fmt.Errorf("live: %s is not a Mofka data dir", dir)
	}
	t := &WALTailer{
		dir:  dir,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := t.Refresh(); err != nil {
		return nil, err
	}
	go t.loop()
	return t, nil
}

func (t *WALTailer) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			if err := t.Refresh(); err != nil && t.opts.Logf != nil {
				t.opts.Logf("live: tail %s: %v", t.dir, err)
			}
		}
	}
}

// Refresh rebuilds the snapshot from the directory now. Anomalies beyond the
// ones already forwarded go to subscribers (the replay is deterministic, so
// the anomaly list is prefix-stable while the log only appends).
func (t *WALTailer) Refresh() error {
	snap, err := ReplayDataDir(t.dir, t.opts.Aggregator)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.err = err
		return err
	}
	t.err = nil
	t.last = snap
	t.ready = true
	for ; t.seen < len(snap.Anomalies); t.seen++ {
		for _, ch := range t.subs {
			select {
			case ch <- snap.Anomalies[t.seen]:
			default:
			}
		}
	}
	return nil
}

// Snapshot returns the most recent successful rebuild.
func (t *WALTailer) Snapshot() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// Err returns the most recent refresh error, nil when the last refresh
// succeeded.
func (t *WALTailer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// SubscribeAnomalies implements Source.
func (t *WALTailer) SubscribeAnomalies() <-chan Anomaly {
	ch := make(chan Anomaly, 64)
	t.mu.Lock()
	t.subs = append(t.subs, ch)
	t.mu.Unlock()
	return ch
}

// Stop halts the refresh loop.
func (t *WALTailer) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// RemoteTailer attaches to a running mofkad broker over Mercury RPC and
// pulls provenance topics incrementally into a persistent aggregator — the
// "consumer group on a live deployment" mode of taskprov watch.
type RemoteTailer struct {
	remote *mofka.Remote
	opts   TailOptions
	agg    *Aggregator

	next map[laneKey]uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// TailRemote starts tailing a remote broker. One synchronous sweep runs
// before returning so the first snapshot is already populated.
func TailRemote(r *mofka.Remote, opts TailOptions) (*RemoteTailer, error) {
	t := &RemoteTailer{
		remote: r,
		opts:   opts.withDefaults(),
		agg:    NewAggregator(opts.Aggregator),
		next:   make(map[laneKey]uint64),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := t.sweep(); err != nil {
		return nil, err
	}
	go t.loop()
	return t, nil
}

// Aggregator exposes the underlying aggregator (e.g. to SetMeta from run
// metadata known out of band).
func (t *RemoteTailer) Aggregator() *Aggregator { return t.agg }

// sweep pulls everything new from every provenance topic on the remote.
func (t *RemoteTailer) sweep() error {
	topics, err := t.remote.Topics()
	if err != nil {
		return err
	}
	want := make(map[string]bool, len(provenance.AllTopics()))
	for _, n := range provenance.AllTopics() {
		want[n] = true
	}
	for _, topic := range topics {
		if !want[topic] {
			continue
		}
		parts, _, err := t.remote.TopicInfo(topic)
		if err != nil {
			return err
		}
		for p := 0; p < parts; p++ {
			k := laneKey{topic, p}
			for {
				evs, err := t.remote.Pull(topic, p, t.next[k], 256, false)
				if err != nil {
					return err
				}
				if len(evs) == 0 {
					break
				}
				for _, ev := range evs {
					t.agg.IngestEvent(topic, p, provenance.MustParse(ev))
				}
				t.next[k] = evs[len(evs)-1].ID + 1
			}
		}
	}
	return nil
}

func (t *RemoteTailer) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			if err := t.sweep(); err != nil && t.opts.Logf != nil {
				t.opts.Logf("live: remote tail: %v", err)
			}
		}
	}
}

// Snapshot implements Source.
func (t *RemoteTailer) Snapshot() Summary { return t.agg.Snapshot() }

// SubscribeAnomalies implements Source.
func (t *RemoteTailer) SubscribeAnomalies() <-chan Anomaly { return t.agg.SubscribeAnomalies() }

// Stop halts the sweep loop.
func (t *RemoteTailer) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}
