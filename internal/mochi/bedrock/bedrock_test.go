package bedrock

import (
	"strings"
	"testing"
	"time"

	"taskprov/internal/mochi/mercury"
)

func TestParseConfig(t *testing.T) {
	js := `{
		"address": "local://svc",
		"yokan": {"databases": ["meta", "index"]},
		"warabi": {"targets": ["data"]},
		"ssg": {"groups": [{"name": "g", "suspect_after_ms": 100, "dead_after_ms": 300}]}
	}`
	cfg, err := ParseConfig([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Address != "local://svc" || len(cfg.Yokan.Databases) != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := ParseConfig([]byte("{nope")); err == nil {
		t.Fatal("garbage config parsed")
	}
	if _, err := ParseConfig([]byte(`{"yokan":{}}`)); err == nil || !strings.Contains(err.Error(), "address") {
		t.Fatalf("missing address not caught: %v", err)
	}
}

func TestDeployLocal(t *testing.T) {
	reg := mercury.NewRegistry()
	d, err := Deploy(DefaultConfig("local://mofka"), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if d.Yokan.Open("metadata") == nil {
		t.Fatal("yokan database missing")
	}
	if d.Warabi.Target("data") == nil {
		t.Fatal("warabi target missing")
	}
	if d.Group("members") == nil {
		t.Fatal("ssg group missing")
	}
	if d.Group("absent") != nil {
		t.Fatal("unexpected group")
	}
	if d.Addr() != "local://mofka" {
		t.Fatalf("Addr = %q", d.Addr())
	}

	// Endpoint is reachable through the registry.
	d.Endpoint().Register("ping", func(req []byte) ([]byte, error) { return []byte("pong"), nil })
	c, err := d.SelfCaller()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call("ping", nil)
	if err != nil || string(resp) != "pong" {
		t.Fatalf("ping = %q, %v", resp, err)
	}
}

func TestDeployLocalWithoutRegistryFails(t *testing.T) {
	if _, err := Deploy(DefaultConfig("local://x"), nil); err == nil {
		t.Fatal("local deploy without registry succeeded")
	}
}

func TestDeployTCP(t *testing.T) {
	d, err := Deploy(DefaultConfig("127.0.0.1:0"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	d.Endpoint().Register("ping", func(req []byte) ([]byte, error) { return []byte("pong"), nil })
	if d.Addr() == "127.0.0.1:0" || d.Addr() == "" {
		t.Fatalf("Addr not resolved: %q", d.Addr())
	}
	c, err := d.SelfCaller()
	if err != nil {
		t.Fatal(err)
	}
	defer c.(*mercury.Client).Close()
	resp, err := c.Call("ping", nil)
	if err != nil || string(resp) != "pong" {
		t.Fatalf("ping over TCP = %q, %v", resp, err)
	}
}

func TestShutdownUnregistersLocal(t *testing.T) {
	reg := mercury.NewRegistry()
	d, err := Deploy(DefaultConfig("local://gone"), reg)
	if err != nil {
		t.Fatal(err)
	}
	d.Shutdown()
	if _, err := reg.Call("local://gone", "x", nil); err == nil {
		t.Fatal("endpoint still reachable after shutdown")
	}
}

func TestSSGGroupThresholdsApplied(t *testing.T) {
	cfg := DefaultConfig("local://svc")
	cfg.SSG.Groups = []SSGGroupConfig{{Name: "fast", SuspectAfterMS: 10, DeadAfterMS: 30}}
	reg := mercury.NewRegistry()
	d, err := Deploy(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	g := d.Group("fast")
	now := time.Now()
	id := g.Join("m0", now)
	g.Sweep(now.Add(15 * time.Millisecond))
	if m, _ := g.Lookup(id); m.State.String() != "suspect" {
		t.Fatalf("state = %v, want suspect (thresholds not applied)", m.State)
	}
}
