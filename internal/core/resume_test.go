package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"taskprov/internal/dask"
	"taskprov/internal/posixio"
	"taskprov/internal/resume"
	"taskprov/internal/sim"
)

// resumeWorkflow is the resumption acceptance workload: three sequential
// graphs chained by cross-graph dependencies, with proxied large outputs,
// small direct outputs, and file-writing sinks — so a coordinator kill
// leaves behind every kind of frontier (resolvable blobs, lost in-memory
// results, completed file effects) for resume to reconstruct.
type resumeWorkflow struct {
	graphs int
	width  int

	// gathered records, per graph, the total bytes the client gathered from
	// the graph's outputs — the "graph results" resume must reproduce.
	gathered []int64
	errs     []string
}

func (r *resumeWorkflow) Name() string { return "resume-accept" }

func (r *resumeWorkflow) Stage(env *Env) {
	for i := 0; i < r.width; i++ {
		env.PFS.CreateNow(fmt.Sprintf("/lus/in/r%03d", i), 4<<20)
	}
}

func (r *resumeWorkflow) Run(p *sim.Proc, cl *dask.Client, env *Env) {
	prevSink := dask.TaskKey("")
	for gid := 1; gid <= r.graphs; gid++ {
		gid := gid
		g := dask.NewGraph(gid)
		var mids []dask.TaskKey
		for i := 0; i < r.width; i++ {
			i := i
			key := dask.TaskKey(fmt.Sprintf("g%d-src-%02d", gid, i))
			var deps []dask.TaskKey
			if prevSink != "" {
				deps = append(deps, prevSink)
			}
			g.Add(&dask.TaskSpec{
				Key: key, Deps: deps,
				OutputSize: 1 << 20, // above the proxy threshold: published as a blob
				Run: func(ctx *dask.TaskContext) {
					f, err := ctx.Open(fmt.Sprintf("/lus/in/r%03d", i), posixio.RDONLY)
					if err != nil {
						panic(err)
					}
					f.Read(ctx.Proc(), 1<<20)
					f.Close(ctx.Proc())
					ctx.Compute(sim.Milliseconds(700))
				},
			})
		}
		for i := 0; i < r.width; i++ {
			key := dask.TaskKey(fmt.Sprintf("g%d-mid-%02d", gid, i))
			mids = append(mids, key)
			g.Add(&dask.TaskSpec{
				Key: key,
				Deps: []dask.TaskKey{
					dask.TaskKey(fmt.Sprintf("g%d-src-%02d", gid, i)),
					dask.TaskKey(fmt.Sprintf("g%d-src-%02d", gid, (i+1)%r.width)),
				},
				EstDuration: sim.Milliseconds(500),
				OutputSize:  512 << 10, // proxied too
			})
		}
		sink := dask.TaskKey(fmt.Sprintf("g%d-sink", gid))
		g.Add(&dask.TaskSpec{
			Key: sink, Deps: mids,
			OutputSize: 64 << 10, // below the threshold: direct, lost on crash
			Run: func(ctx *dask.TaskContext) {
				ctx.Compute(sim.Milliseconds(200))
				f, err := ctx.Open(fmt.Sprintf("/lus/out/g%d.bin", gid), posixio.WRONLY|posixio.CREATE)
				if err != nil {
					panic(err)
				}
				f.Write(ctx.Proc(), 256<<10)
				f.Close(ctx.Proc())
			},
		})
		if prevSink != "" {
			g.AddExternal(prevSink)
		}
		cl.SubmitAndWait(p, g)
		r.errs = append(r.errs, cl.GraphError(gid))
		r.gathered = append(r.gathered, cl.Gather(p, append(append([]dask.TaskKey{}, mids...), sink)))
		prevSink = sink
	}
}

func resumeTestSession(seed uint64) SessionConfig {
	cfg := testSession(seed)
	cfg.Dask.ProxyThresholdBytes = 256 << 10
	return cfg
}

// drainExecs summarizes a merged execution stream: per-key record count and
// the output size of each key's latest record.
func drainExecs(t *testing.T, art *RunArtifacts) (counts map[dask.TaskKey]int, sizes map[dask.TaskKey]int64) {
	t.Helper()
	metas, err := DrainTopic(art.Broker, TopicExecutions)
	if err != nil {
		t.Fatal(err)
	}
	counts = make(map[dask.TaskKey]int)
	sizes = make(map[dask.TaskKey]int64)
	stops := make(map[dask.TaskKey]float64)
	for _, m := range metas {
		e := ParseExecution(m)
		counts[e.Key]++
		if s := e.Stop.Seconds(); s >= stops[e.Key] {
			stops[e.Key] = s
			sizes[e.Key] = e.OutputSize
		}
	}
	return counts, sizes
}

// TestResumeEquivalence is the strong acceptance form: kill the whole
// coordinator at three distinct points (early / mid / late), resume each
// from its data dir, and require the merged provenance to yield the same
// final graph results and output sizes as an uninterrupted run — with no
// task re-executed whose output was still resolvable from a surviving
// proxy-store blob.
func TestResumeEquivalence(t *testing.T) {
	const seed = 11
	base := &resumeWorkflow{graphs: 3, width: 8}
	baseArt, err := Run(resumeTestSession(seed), base)
	if err != nil {
		t.Fatal(err)
	}
	for i, ge := range base.errs {
		if ge != "" {
			t.Fatalf("baseline graph %d erred: %s", i+1, ge)
		}
	}
	_, baseSizes := drainExecs(t, baseArt)
	baseGraphs, err := baseArt.TaskGraphs()
	if err != nil {
		t.Fatal(err)
	}

	for _, frac := range []float64{0.25, 0.55, 0.85} {
		frac := frac
		t.Run(fmt.Sprintf("kill-at-%.0f%%", 100*frac), func(t *testing.T) {
			dir := t.TempDir() + "/run"
			killAt := time.Duration(float64(baseArt.WallTime) * frac)

			cfg := resumeTestSession(seed)
			cfg.MofkaDataDir = dir
			cfg.ChaosSpec = fmt.Sprintf("scheduler at=%s", killAt)
			_, err := Run(cfg, &resumeWorkflow{graphs: 3, width: 8})
			var crash *CrashError
			if !errors.As(err, &crash) {
				t.Fatalf("expected CrashError, got %v", err)
			}
			if crash.DataDir != dir || crash.Attempt != 1 {
				t.Fatalf("crash = %+v", crash)
			}

			// Pre-resume snapshot: which outputs are still resolvable, and
			// how many executions the surviving log records for them.
			pre, err := resume.Reconstruct(dir)
			if err != nil {
				t.Fatal(err)
			}
			if pre.Attempt != 2 {
				t.Fatalf("reconstructed attempt = %d", pre.Attempt)
			}

			rcfg := resumeTestSession(seed)
			rcfg.ResumeFrom = dir
			resumed := &resumeWorkflow{graphs: 3, width: 8}
			art, err := Run(rcfg, resumed)
			if err != nil {
				t.Fatal(err)
			}

			// Identical final graph results.
			for i, ge := range resumed.errs {
				if ge != "" {
					t.Fatalf("resumed graph %d erred: %s", i+1, ge)
				}
			}
			if len(resumed.gathered) != len(base.gathered) {
				t.Fatalf("gathered %d graphs, baseline %d", len(resumed.gathered), len(base.gathered))
			}
			for i := range base.gathered {
				if resumed.gathered[i] != base.gathered[i] {
					t.Fatalf("graph %d result: %d bytes, baseline %d", i+1, resumed.gathered[i], base.gathered[i])
				}
			}

			// Merged provenance covers every task with baseline sizes: either
			// an execution record survives (or was re-made), or the task was
			// memoized — its record died in an unflushed batch, but the
			// checkpoint/publish evidence that proved completion carries the
			// same output size.
			counts, sizes := drainExecs(t, art)
			for k, sz := range baseSizes {
				if got, ok := sizes[k]; ok {
					if got != sz {
						t.Fatalf("task %s output = %d, baseline %d", k, got, sz)
					}
					continue
				}
				m, ok := pre.Memos[k]
				if !ok {
					t.Fatalf("merged provenance lost task %s entirely", k)
				}
				if m.Size != sz {
					t.Fatalf("task %s memoized size = %d, baseline %d", k, m.Size, sz)
				}
			}
			// No re-execution of tasks whose output was still resolvable.
			for k, m := range pre.Memos {
				if !m.Resolvable {
					continue
				}
				if counts[k] != pre.ExecCounts[k] {
					t.Fatalf("resolvable task %s re-executed: %d records, %d before resume",
						k, counts[k], pre.ExecCounts[k])
				}
			}
			// Merged summaries match the uninterrupted baseline.
			if g, err := art.TaskGraphs(); err != nil || g != baseGraphs {
				t.Fatalf("merged task graphs = %d (%v), baseline %d", g, err, baseGraphs)
			}
			if art.Proxy.Resident != baseArt.Proxy.Resident || art.Proxy.Live != baseArt.Proxy.Live {
				t.Fatalf("proxy residency %d bytes/%d blobs, baseline %d/%d",
					art.Proxy.Resident, art.Proxy.Live, baseArt.Proxy.Resident, baseArt.Proxy.Live)
			}
			// The final filesystem is byte-identical to the uninterrupted
			// run's: memoized tasks' file effects were replayed, the rest
			// re-ran their own I/O.
			if !reflect.DeepEqual(art.Files, baseArt.Files) {
				t.Fatalf("final filesystem manifest differs from baseline (%d files vs %d)",
					len(art.Files), len(baseArt.Files))
			}

			// The attempt boundary is provenance: lineage closed, metadata
			// stamped, session_resumed on the warnings topic.
			lin, err := resume.LoadLineage(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(lin.Attempts) != 2 || !lin.Last().Completed || lin.Last().Attempt != 2 {
				t.Fatalf("lineage = %+v", lin)
			}
			if art.Meta.Attempt != 2 || art.Meta.ResumedFrom != 1 {
				t.Fatalf("metadata attempt = %d resumed_from = %d", art.Meta.Attempt, art.Meta.ResumedFrom)
			}
			warns, err := DrainTopic(art.Broker, TopicWarnings)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for _, m := range warns {
				if ParseWarning(m).Kind == dask.WarnSessionResumed {
					seen++
				}
			}
			if seen != 1 {
				t.Fatalf("session_resumed warnings = %d, want 1", seen)
			}

			// A completed run refuses a second resume.
			if _, err := resume.Reconstruct(dir); !errors.Is(err, resume.ErrCompleted) {
				t.Fatalf("re-resume of completed run: %v", err)
			}
		})
	}
}

// TestSchedulerKillAtTask covers the chaos "scheduler at-task=KEY" trigger:
// the coordinator dies when the named task's execution record is observed,
// and the run resumes to the same results.
func TestSchedulerKillAtTask(t *testing.T) {
	const seed = 23
	base := &resumeWorkflow{graphs: 2, width: 6}
	if _, err := Run(resumeTestSession(seed), base); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir() + "/run"
	cfg := resumeTestSession(seed)
	cfg.MofkaDataDir = dir
	cfg.ChaosSpec = "scheduler at-task=g1-sink"
	_, err := Run(cfg, &resumeWorkflow{graphs: 2, width: 6})
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError, got %v", err)
	}

	rcfg := resumeTestSession(seed)
	rcfg.ResumeFrom = dir
	resumed := &resumeWorkflow{graphs: 2, width: 6}
	if _, err := Run(rcfg, resumed); err != nil {
		t.Fatal(err)
	}
	for i := range base.gathered {
		if resumed.gathered[i] != base.gathered[i] {
			t.Fatalf("graph %d result: %d bytes, baseline %d", i+1, resumed.gathered[i], base.gathered[i])
		}
	}
}

// TestSessionCloseIdempotent: Close must be safe on nil, on a
// partially-constructed session, after success, and when called repeatedly.
func TestSessionCloseIdempotent(t *testing.T) {
	var nilSession *Session
	if err := nilSession.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}

	s, err := NewSession(testSession(5), &toyWorkflow{files: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// A construction failure must not leave a half-open session behind:
	// NewSession closes what it built and reports the error.
	bad := testSession(5)
	bad.ChaosSpec = "scheduler"
	if _, err := NewSession(bad, &toyWorkflow{files: 2}, nil); err == nil {
		t.Fatal("invalid chaos spec accepted")
	}

	// Close after a full Execute, with a durable dir in play.
	cfg := testSession(6)
	cfg.MofkaDataDir = t.TempDir() + "/run"
	s2, err := NewSession(cfg, &toyWorkflow{files: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	art, err := s2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close after Execute: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("repeat Close after Execute: %v", err)
	}
	// Published events stay readable after Close.
	if n, err := art.DistinctTasks(); err != nil || n == 0 {
		t.Fatalf("post-Close read: %d tasks, %v", n, err)
	}
}

// TestResumeRefusals: resuming a directory without a log, and double-use of
// a data dir without ResumeFrom, both fail loudly.
func TestResumeRefusals(t *testing.T) {
	cfg := testSession(7)
	cfg.ResumeFrom = t.TempDir()
	if _, err := Run(cfg, &toyWorkflow{files: 1}); err == nil {
		t.Fatal("resumed from an empty directory")
	}

	dir := t.TempDir() + "/run"
	cfg2 := testSession(7)
	cfg2.MofkaDataDir = dir
	if _, err := Run(cfg2, &toyWorkflow{files: 1}); err != nil {
		t.Fatal(err)
	}
	cfg3 := testSession(7)
	cfg3.MofkaDataDir = dir
	if _, err := Run(cfg3, &toyWorkflow{files: 1}); err == nil {
		t.Fatal("second run appended to an existing event log")
	}
	// And a cleanly completed run refuses ResumeFrom too.
	cfg4 := testSession(7)
	cfg4.ResumeFrom = dir
	if _, err := Run(cfg4, &toyWorkflow{files: 1}); !errors.Is(err, resume.ErrCompleted) {
		t.Fatalf("resume of completed run: %v", err)
	}
}
