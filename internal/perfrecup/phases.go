package perfrecup

import (
	"taskprov/internal/core"
	"taskprov/internal/live"
)

// PhaseBreakdown is the per-run decomposition behind Fig. 3: cumulative
// time spent in I/O, communication, and computation, plus the total wall
// time. As in the paper, the three phases are non-exclusive (they may
// overlap in time across threads) and the total additionally includes
// workflow coordination (connecting to the scheduler, waiting for workers,
// creating task graphs).
type PhaseBreakdown struct {
	Workflow string
	Seed     uint64

	// The three phase figures are per-thread-slot averages (cumulative
	// seconds divided by the job's worker-thread count), so they are
	// directly comparable to the wall time: a fully utilized job has
	// ComputeSeconds approaching TotalSeconds, and short workflows show
	// the paper's "disproportionately long total" from coordination.
	IOSeconds      float64
	CommSeconds    float64
	ComputeSeconds float64
	TotalSeconds   float64 // workflow wall time

	ThreadSlots int

	IOOps     int64
	Transfers int64
	Tasks     int64
}

// Phases computes the breakdown from one run's artifacts. The computation
// itself lives in internal/live (exec time includes I/O performed inside
// tasks, so computation = exec − I/O clamped at zero, all divided by the
// thread-slot count); PERFRECUP and the live monitor thereby share one
// implementation of the phase definitions, which is what makes the
// live/post-mortem equivalence invariant checkable at all.
func Phases(art *core.RunArtifacts) (PhaseBreakdown, error) {
	sum, err := LiveReplay(art, live.AggregatorOptions{Anomaly: live.AnomalyConfig{Disable: true}})
	if err != nil {
		return PhaseBreakdown{Workflow: art.Meta.Workflow, Seed: art.Meta.Seed}, err
	}
	return PhaseBreakdown{
		Workflow:       art.Meta.Workflow,
		Seed:           art.Meta.Seed,
		IOSeconds:      sum.IOSeconds,
		CommSeconds:    sum.CommSeconds,
		ComputeSeconds: sum.ComputeSeconds,
		TotalSeconds:   sum.WallSeconds,
		ThreadSlots:    sum.ThreadSlots,
		IOOps:          sum.IOOps,
		Transfers:      sum.Transfers,
		Tasks:          sum.Tasks,
	}, nil
}

// PhaseStats aggregates breakdowns across runs of one workflow: mean and
// standard deviation per phase, both raw and normalized by the per-run
// total (the paper normalizes "for readability as workflows vary in total
// duration").
type PhaseStats struct {
	Workflow string
	Runs     int

	MeanIO, StdIO           float64
	MeanComm, StdComm       float64
	MeanCompute, StdCompute float64
	MeanTotal, StdTotal     float64

	// Normalized: each run's phases divided by that run's largest phase
	// value, then averaged.
	NormIO, NormIOStd           float64
	NormComm, NormCommStd       float64
	NormCompute, NormComputeStd float64
	NormTotal, NormTotalStd     float64
}

// AggregatePhases summarizes a set of per-run breakdowns (all from the same
// workflow).
func AggregatePhases(runs []PhaseBreakdown) PhaseStats {
	s := PhaseStats{Runs: len(runs)}
	if len(runs) == 0 {
		return s
	}
	s.Workflow = runs[0].Workflow
	var io, comm, comp, tot []float64
	var nio, ncomm, ncomp, ntot []float64
	for _, r := range runs {
		io = append(io, r.IOSeconds)
		comm = append(comm, r.CommSeconds)
		comp = append(comp, r.ComputeSeconds)
		tot = append(tot, r.TotalSeconds)
		max := r.IOSeconds
		for _, v := range []float64{r.CommSeconds, r.ComputeSeconds, r.TotalSeconds} {
			if v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
		nio = append(nio, r.IOSeconds/max)
		ncomm = append(ncomm, r.CommSeconds/max)
		ncomp = append(ncomp, r.ComputeSeconds/max)
		ntot = append(ntot, r.TotalSeconds/max)
	}
	s.MeanIO, s.StdIO = Mean(io), Std(io)
	s.MeanComm, s.StdComm = Mean(comm), Std(comm)
	s.MeanCompute, s.StdCompute = Mean(comp), Std(comp)
	s.MeanTotal, s.StdTotal = Mean(tot), Std(tot)
	s.NormIO, s.NormIOStd = Mean(nio), Std(nio)
	s.NormComm, s.NormCommStd = Mean(ncomm), Std(ncomm)
	s.NormCompute, s.NormComputeStd = Mean(ncomp), Std(ncomp)
	s.NormTotal, s.NormTotalStd = Mean(ntot), Std(ntot)
	return s
}
