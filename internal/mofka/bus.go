package mofka

// Bus is the minimal event-publishing surface the provenance collector
// needs. Two implementations exist: a standalone Broker (via Broker.Bus) and
// a sharded, replicated cluster (internal/mofka/cluster). Defining the
// interface here — in the leaf package both sides already import — lets
// internal/core target either deployment without an import cycle.
type Bus interface {
	// EnsureTopic opens the topic, creating it if absent.
	EnsureTopic(cfg TopicConfig) (BusTopic, error)
}

// BusTopic is one named event stream reachable through a Bus.
type BusTopic interface {
	Name() string
	PartitionCount() int
	// Producer creates a batching publisher for the topic. Cluster
	// implementations honor the same batching/degraded-mode options and add
	// quorum replication with idempotent retry underneath.
	Producer(opts ProducerOptions) Pusher
}

// Pusher is the publishing half of a producer: what the collection plugins
// actually call. *Producer satisfies it, as does the cluster producer.
type Pusher interface {
	Push(metadata Metadata, data []byte) error
	PushRaw(metadata, data []byte) error
	Flush() error
	Close() error
	// Degraded reports whether the producer is currently buffering because
	// appends fail (broker unreachable, no quorum).
	Degraded() bool
}

// Bus adapts the broker to the Bus interface.
func (b *Broker) Bus() Bus { return brokerBus{b} }

type brokerBus struct{ b *Broker }

func (bb brokerBus) EnsureTopic(cfg TopicConfig) (BusTopic, error) {
	t, err := bb.b.OpenOrCreateTopic(cfg)
	if err != nil {
		return nil, err
	}
	return brokerBusTopic{t}, nil
}

type brokerBusTopic struct{ t *Topic }

func (bt brokerBusTopic) Name() string                         { return bt.t.Name() }
func (bt brokerBusTopic) PartitionCount() int                  { return bt.t.Partitions() }
func (bt brokerBusTopic) Producer(opts ProducerOptions) Pusher { return bt.t.NewProducer(opts) }
