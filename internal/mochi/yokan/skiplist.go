package yokan

import "math/rand"

// skiplist is an ordered map from string keys to byte-slice values with
// O(log n) expected insert/lookup/delete. It is not safe for concurrent use;
// Database provides the locking.
type skiplist struct {
	head  *skipnode
	level int
	size  int
	rng   *rand.Rand
}

const maxLevel = 24

type skipnode struct {
	key   string
	value []byte
	next  []*skipnode
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:  &skipnode{next: make([]*skipnode, maxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	l := 1
	for l < maxLevel && s.rng.Intn(2) == 0 {
		l++
	}
	return l
}

// findPredecessors fills update with the rightmost node at each level whose
// key is < key, and returns the candidate node (which may equal key).
func (s *skiplist) findPredecessors(key string, update []*skipnode) *skipnode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x.next[0]
}

// put inserts or replaces key. It reports whether the key was new.
func (s *skiplist) put(key string, value []byte) bool {
	update := make([]*skipnode, maxLevel)
	for i := s.level; i < maxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(key, update)
	if n != nil && n.key == key {
		n.value = value
		return false
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	node := &skipnode{key: key, value: value, next: make([]*skipnode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.size++
	return true
}

// get returns the value for key.
func (s *skiplist) get(key string) ([]byte, bool) {
	n := s.findPredecessors(key, nil)
	if n != nil && n.key == key {
		return n.value, true
	}
	return nil, false
}

// del removes key, reporting whether it existed.
func (s *skiplist) del(key string) bool {
	update := make([]*skipnode, maxLevel)
	for i := s.level; i < maxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(key, update)
	if n == nil || n.key != key {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.size--
	return true
}

// seek returns the first node with key >= from.
func (s *skiplist) seek(from string) *skipnode {
	return s.findPredecessors(from, nil)
}

// first returns the smallest node.
func (s *skiplist) first() *skipnode { return s.head.next[0] }
