package mercury

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// scriptedCaller returns a scripted error sequence, then succeeds. It also
// records SetTimeout so tests can watch the adaptive deadline propagate.
type scriptedCaller struct {
	mu      sync.Mutex
	errs    []error
	calls   int
	resp    []byte
	timeout time.Duration
}

func (s *scriptedCaller) SetTimeout(d time.Duration) {
	s.mu.Lock()
	s.timeout = d
	s.mu.Unlock()
}

func (s *scriptedCaller) Call(rpc string, req []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.errs) > 0 {
		err := s.errs[0]
		s.errs = s.errs[1:]
		return nil, err
	}
	return s.resp, nil
}

// noSleep replaces real backoff waits in unit tests.
func noSleep(rc *RetryCaller) *RetryCaller {
	rc.Sleep = func(time.Duration) {}
	return rc
}

func TestRetrySucceedsAfterTransientTimeouts(t *testing.T) {
	sc := &scriptedCaller{
		errs: []error{fmt.Errorf("%w: call x", ErrTimeout), fmt.Errorf("%w: call x", ErrTimeout)},
		resp: []byte("ok"),
	}
	rc := noSleep(NewRetryCaller(sc, "node3", RetryPolicy{Seed: 7}, nil))
	var retries []int
	rc.OnRetry = func(addr, rpc string, attempt int, wait time.Duration, err error) {
		if addr != "node3" || rpc != "x" {
			t.Errorf("OnRetry addr/rpc = %q/%q", addr, rpc)
		}
		if wait <= 0 {
			t.Errorf("OnRetry wait = %v, want > 0", wait)
		}
		retries = append(retries, attempt)
	}
	resp, err := rc.Call("x", []byte("req"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("Call = %q, %v", resp, err)
	}
	if sc.calls != 3 {
		t.Fatalf("attempts = %d, want 3", sc.calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
	st := rc.Stats()
	if st.Calls != 1 || st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryRemoteErrorIsTerminal(t *testing.T) {
	sc := &scriptedCaller{errs: []error{&RemoteError{Msg: "handler says no"}}}
	rc := noSleep(NewRetryCaller(sc, "node1", RetryPolicy{}, nil))
	_, err := rc.Call("x", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if sc.calls != 1 {
		t.Fatalf("attempts = %d, want 1 (handler errors must not be retried)", sc.calls)
	}
}

func TestRetryUnknownRPCIsTerminal(t *testing.T) {
	sc := &scriptedCaller{errs: []error{fmt.Errorf("%w: %q", ErrNoRPC, "x")}}
	rc := noSleep(NewRetryCaller(sc, "node1", RetryPolicy{}, nil))
	_, err := rc.Call("x", nil)
	if !errors.Is(err, ErrNoRPC) {
		t.Fatalf("err = %v, want ErrNoRPC", err)
	}
	if sc.calls != 1 {
		t.Fatalf("attempts = %d, want 1", sc.calls)
	}
}

func TestRetryAttemptsExhausted(t *testing.T) {
	timeouts := make([]error, 10)
	for i := range timeouts {
		timeouts[i] = fmt.Errorf("%w: wedged", ErrTimeout)
	}
	sc := &scriptedCaller{errs: timeouts}
	rc := noSleep(NewRetryCaller(sc, "node2", RetryPolicy{MaxAttempts: 3}, nil))
	var exhausted int
	rc.OnExhausted = func(addr, rpc string, attempts int, err error) {
		exhausted++
		if attempts != 3 {
			t.Errorf("OnExhausted attempts = %d, want 3", attempts)
		}
		if errors.Is(err, ErrRetryBudgetExhausted) {
			t.Error("attempt exhaustion misreported as budget exhaustion")
		}
	}
	_, err := rc.Call("x", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
	if sc.calls != 3 {
		t.Fatalf("attempts = %d, want 3", sc.calls)
	}
	if exhausted != 1 {
		t.Fatalf("OnExhausted fired %d times", exhausted)
	}
	if st := rc.Stats(); st.Exhausted != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryBudgetSharedAndBounding(t *testing.T) {
	// Two flapping destinations share a 3-retry budget: total extra attempts
	// across both must be exactly 3, and the over-budget call fails with the
	// budget sentinel wrapped around the underlying transport error.
	mk := func() *scriptedCaller {
		errs := make([]error, 100)
		for i := range errs {
			errs[i] = fmt.Errorf("%w: brownout", ErrTimeout)
		}
		return &scriptedCaller{errs: errs}
	}
	budget := NewRetryBudget(3)
	a, b := mk(), mk()
	rcA := noSleep(NewRetryCaller(a, "nodeA", RetryPolicy{MaxAttempts: 10}, budget))
	rcB := noSleep(NewRetryCaller(b, "nodeB", RetryPolicy{MaxAttempts: 10}, budget))
	_, errA := rcA.Call("x", nil)
	_, errB := rcB.Call("x", nil)
	if !errors.Is(errA, ErrRetryBudgetExhausted) && !errors.Is(errB, ErrRetryBudgetExhausted) {
		t.Fatalf("neither call reported budget exhaustion: %v / %v", errA, errB)
	}
	if !errors.Is(errA, ErrTimeout) && !errors.Is(errB, ErrTimeout) {
		// The first caller drains the budget and still surfaces its timeout.
		t.Fatalf("underlying timeout not surfaced: %v / %v", errA, errB)
	}
	totalRetries := (a.calls - 1) + (b.calls - 1)
	if totalRetries != 3 {
		t.Fatalf("total retries = %d, want exactly the budget (3)", totalRetries)
	}
	if budget.Remaining() != 0 {
		t.Fatalf("budget remaining = %d, want 0", budget.Remaining())
	}
	if st := rcB.Stats(); st.BudgetDenied != 1 {
		t.Fatalf("rcB stats = %+v, want BudgetDenied = 1", st)
	}
}

func TestRetryBackoffDeterministicPerSeedAndAddr(t *testing.T) {
	seq := func(seed uint64, addr string) []time.Duration {
		errs := make([]error, 5)
		for i := range errs {
			errs[i] = fmt.Errorf("%w: x", ErrTimeout)
		}
		sc := &scriptedCaller{errs: errs}
		rc := NewRetryCaller(sc, addr, RetryPolicy{Seed: seed, MaxAttempts: 6}, nil)
		var waits []time.Duration
		rc.Sleep = func(d time.Duration) { waits = append(waits, d) }
		if _, err := rc.Call("x", nil); err != nil {
			t.Fatalf("Call: %v", err)
		}
		return waits
	}
	a1, a2 := seq(42, "node1"), seq(42, "node1")
	if len(a1) != 5 {
		t.Fatalf("waits = %v, want 5 entries", a1)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed+addr diverged: %v vs %v", a1, a2)
		}
	}
	b := seq(42, "node2")
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different addrs produced identical jitter streams")
	}
	// Backoff grows (modulo jitter in [0.5,1.5), doubling dominates) and
	// stays within [0.5*base, 1.5*max].
	p := RetryPolicy{}.withDefaults()
	for i, w := range a1 {
		lo := time.Duration(0.5 * float64(p.BaseBackoff))
		hi := time.Duration(1.5 * float64(p.MaxBackoff))
		if w < lo || w > hi {
			t.Fatalf("wait[%d] = %v outside [%v, %v]", i, w, lo, hi)
		}
	}
}

func TestRetryAdaptiveTimeoutClampsAndPropagates(t *testing.T) {
	sc := &scriptedCaller{resp: []byte("ok")}
	rc := noSleep(NewRetryCaller(sc, "node1", RetryPolicy{
		MinTimeout: 20 * time.Millisecond,
		MaxTimeout: 300 * time.Millisecond,
	}, nil))
	// No samples yet: conservative start at MaxTimeout, pushed to the
	// transport before the first attempt.
	if got := rc.Timeout(); got != 300*time.Millisecond {
		t.Fatalf("initial timeout = %v, want MaxTimeout", got)
	}
	if _, err := rc.Call("x", nil); err != nil {
		t.Fatal(err)
	}
	sc.mu.Lock()
	pushed := sc.timeout
	sc.mu.Unlock()
	if pushed != 300*time.Millisecond {
		t.Fatalf("SetTimeout received %v, want 300ms", pushed)
	}
	// The scripted call returns in ~microseconds, so EWMA*mult clamps to
	// the floor.
	if got := rc.Timeout(); got != 20*time.Millisecond {
		t.Fatalf("post-sample timeout = %v, want MinTimeout", got)
	}
}

// waitGoroutines polls until the goroutine count settles back near base,
// failing the test if leaked goroutines persist.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestRetryConcurrentTimeoutsNoLeaks drives a real TCP server with a mix of
// wedged and healthy RPCs from concurrent retrying clients: every healthy
// call must succeed, every wedged call must fail cleanly with a timeout
// within its attempt bound, late replies from abandoned connections must
// never be delivered to a different call, and no goroutine may outlive the
// teardown.
func TestRetryConcurrentTimeoutsNoLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	ep := NewEndpoint("tcp-svc")
	ep.Register("wedge", func(req []byte) ([]byte, error) {
		<-release
		return []byte("stale"), nil
	})
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv, err := Serve(ep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	policy := RetryPolicy{
		MinTimeout:  40 * time.Millisecond,
		MaxTimeout:  40 * time.Millisecond,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		MaxAttempts: 2,
		Seed:        1,
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n*4)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cli
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rc := NewRetryCaller(clients[i], srv.Addr(), policy, nil)
			if i%2 == 0 {
				// Healthy path: every echo must round-trip its own payload.
				for j := 0; j < 20; j++ {
					msg := []byte(fmt.Sprintf("g%d-m%d", i, j))
					resp, err := rc.Call("echo", msg)
					if err != nil {
						errs <- fmt.Errorf("echo: %w", err)
						return
					}
					if !bytes.Equal(resp, msg) {
						errs <- fmt.Errorf("echo mismatch: %q vs %q", resp, msg)
						return
					}
				}
				return
			}
			// Wedged path: the call times out, retries once, then fails
			// cleanly — and the connection that eventually carries the
			// stale reply has been abandoned.
			if _, err := rc.Call("wedge", nil); !errors.Is(err, ErrTimeout) {
				errs <- fmt.Errorf("wedge err = %v, want ErrTimeout", err)
				return
			}
			if st := rc.Stats(); st.Retries != 1 || st.Exhausted != 1 {
				errs <- fmt.Errorf("wedge stats = %+v, want 1 retry + 1 exhaustion", st)
				return
			}
			// A follow-up call on the same client must redial and get the
			// correct fresh reply, never the wedged handler's stale one.
			resp, err := rc.Call("echo", []byte("fresh"))
			if err != nil || !bytes.Equal(resp, []byte("fresh")) {
				errs <- fmt.Errorf("post-timeout echo = %q, %v (stale reply delivered?)", resp, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	close(release)
	for _, cli := range clients {
		cli.Close()
	}
	srv.Close()
	waitGoroutines(t, base)
}
