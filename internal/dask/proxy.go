package dask

import (
	"fmt"

	"taskprov/internal/proxystore"
	"taskprov/internal/sim"
)

// proxyPlane binds a proxystore.Store to a cluster: it performs the store
// operations the scheduler and workers need and fans each one out to the
// worker plugins as a ProxyEvent, so the pass-by-reference data plane leaves
// the same kind of provenance trail as executions and transfers. Nil when
// the proxy store is disabled (ProxyThresholdBytes == 0).
type proxyPlane struct {
	c     *Cluster
	store *proxystore.Store
}

func newProxyPlane(c *Cluster) *proxyPlane {
	return &proxyPlane{c: c, store: proxystore.New()}
}

func (pp *proxyPlane) emit(op string, key TaskKey, worker string, bytes int64, latency sim.Time) {
	ev := ProxyEvent{
		Op: op, Key: key, Worker: worker, Bytes: bytes,
		Resident: pp.store.ResidentBytes(), ResolveLatency: latency,
		At: pp.c.kernel.Now(),
	}
	for _, p := range pp.c.workerPlugins {
		p.ProxyEvent(ev)
	}
}

// publish registers a finished task's output as a blob owned by the
// producing worker incarnation. Republishing a recomputed key first frees
// the stale blob, which gets its own free event so resident accounting
// stays a pure delta stream.
//
// First-write-wins fence: when the key already has a blob owned by a
// DIFFERENT worker whose incarnation is still alive, this publish is the
// losing half of a speculation race (every legitimate republish path — lost
// replica, recompute, resume — has a dead or restarted prior owner) and is
// rejected, so a cancelled attempt's output never displaces the winner's
// blob or strands its reference counts.
func (pp *proxyPlane) publish(key TaskKey, owner, incarnation int, size int64, workerAddr string) proxystore.Ref {
	if old, ok := pp.store.Lookup(string(key)); ok && old.Owner != owner {
		ow := pp.c.workers[old.Owner]
		if ow.alive && ow.incarnation == old.Incarnation {
			pp.emit(ProxyOpDuplicate, key, workerAddr, size, 0)
			return old
		}
	}
	ref, replaced := pp.store.Publish(string(key), owner, incarnation, size)
	if replaced >= 0 {
		pp.emit(ProxyOpFree, key, workerAddr, replaced, 0)
	}
	pp.emit(ProxyOpPublish, key, workerAddr, size, 0)
	return ref
}

// lookup inspects a key's blob without perturbing resolve statistics — the
// scheduler's speculation settlement uses it to align its winner with the
// store's first publisher.
func (pp *proxyPlane) lookup(key TaskKey) (proxystore.Ref, bool) {
	return pp.store.Lookup(string(key))
}

// resolve looks up a reference on behalf of a consuming worker. A miss is
// recorded (with the event) and reported to the caller, which falls back to
// the missing-data recovery path.
func (pp *proxyPlane) resolve(key TaskKey, workerAddr string) (proxystore.Ref, bool) {
	ref, ok := pp.store.Resolve(string(key))
	if !ok {
		pp.emit(ProxyOpMiss, key, workerAddr, 0, 0)
		return ref, false
	}
	return ref, true
}

// resolved records a successful demand-to-arrival resolution (emitted when
// the payload lands, so ResolveLatency is known).
func (pp *proxyPlane) resolved(key TaskKey, workerAddr string, bytes int64, latency sim.Time) {
	pp.emit(ProxyOpResolve, key, workerAddr, bytes, latency)
}

// retain mirrors scheduler-side dependent refcount acquisition.
func (pp *proxyPlane) retain(key TaskKey, n int) { pp.store.Retain(string(key), n) }

// release mirrors one dependent refcount release; the blob is destroyed
// when the count drains.
func (pp *proxyPlane) release(key TaskKey) {
	if freed, size := pp.store.Release(string(key)); freed {
		pp.emit(ProxyOpFree, key, "scheduler", size, 0)
	}
}

// free destroys a blob outright (scheduler free-keys broadcast).
func (pp *proxyPlane) free(key TaskKey) {
	if freed, size := pp.store.Free(string(key)); freed {
		pp.emit(ProxyOpFree, key, "scheduler", size, 0)
	}
}

// reclaimWorker sweeps a dead worker's blobs at eviction time, emitting one
// reclaim event per blob (sorted by key — deterministic) and returning the
// sweep summary for the aggregate recovery warning.
func (pp *proxyPlane) reclaimWorker(rank int, addr string) (blobs int, bytes int64) {
	refs, bytes := pp.store.ReclaimWorker(rank)
	for _, r := range refs {
		pp.emit(ProxyOpReclaim, TaskKey(r.Key), addr, r.Size, 0)
	}
	return len(refs), bytes
}

// ProxyStore exposes the cluster's pass-by-reference store (nil when
// disabled) for tests and session artifacts.
func (c *Cluster) ProxyStore() *proxystore.Store {
	if c.proxy == nil {
		return nil
	}
	return c.proxy.store
}

// ProxyStats returns a snapshot of proxy-store counters (zero when the
// store is disabled).
func (c *Cluster) ProxyStats() proxystore.Stats {
	if c.proxy == nil {
		return proxystore.Stats{}
	}
	return c.proxy.store.Stats()
}

// String-ifies a reclaim sweep for the aggregate warning message.
func reclaimMessage(addr string, blobs int, bytes int64) string {
	return fmt.Sprintf("reclaimed %d proxy blob(s) (%d bytes) owned by dead worker %s", blobs, bytes, addr)
}
