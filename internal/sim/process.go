package sim

// Proc is a coroutine-style simulation process: a goroutine that runs in
// strict alternation with the kernel, so sequential code (sleep, do an async
// operation, sleep again) can be written in straight-line style while the
// kernel stays deterministic.
//
// Exactly one goroutine — either the kernel or one process — runs at any
// moment. The kernel resumes a process from an event callback and blocks
// until the process parks (in Sleep or Await) or returns. All cross-goroutine
// state is therefore synchronized through the park/resume channel handoffs.
type Proc struct {
	k        *Kernel
	toProc   chan struct{} // kernel -> process: run
	toKernel chan struct{} // process -> kernel: parked or finished
	finished bool
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Go starts fn as a new simulation process at the current virtual time (it
// begins executing in a zero-delay event). When fn returns the process ends.
func (k *Kernel) Go(fn func(p *Proc)) {
	p := &Proc{k: k, toProc: make(chan struct{}), toKernel: make(chan struct{})}
	k.After(0, func() {
		go func() {
			fn(p)
			p.finished = true
			p.toKernel <- struct{}{}
		}()
		<-p.toKernel
	})
}

// park transfers control back to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.toKernel <- struct{}{}
	<-p.toProc
}

// resume is called from kernel event context; it hands control to the
// process and blocks the kernel until the process parks again or finishes.
func (p *Proc) resumeFromEvent() {
	p.toProc <- struct{}{}
	<-p.toKernel
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, p.resumeFromEvent)
	p.park()
}

// Await runs an asynchronous operation and blocks the process until the
// operation's completion callback fires. start is invoked immediately (in
// process context) with a done function; the operation MUST arrange for done
// to be called from a kernel event callback, never synchronously from within
// start itself, or the simulation deadlocks. All asynchronous primitives in
// this repository (SharedServer.Submit, platform transfers, PFS operations)
// satisfy that contract.
func (p *Proc) Await(start func(done func())) {
	start(func() { p.resumeFromEvent() })
	p.park()
}

// Yield suspends the process until the next zero-delay event slot, letting
// other already-scheduled events at the current timestamp run first.
func (p *Proc) Yield() { p.Sleep(0) }
