package core

import (
	"errors"
	"fmt"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// Collector owns the Mofka producers the provenance plugins publish
// through. One Collector instruments one run; its plugins attach to the
// dask.Cluster before Start.
//
// The paper's design goal — "track the detailed lineage and execution
// history of individual tasks without perturbing the workflow system" — maps
// to plugins that only serialize and enqueue; batching and persistence
// happen inside Mofka.
type Collector struct {
	broker    *mofka.Broker // nil when publishing through a cluster Bus
	producers map[string]mofka.Pusher

	// Counters for quick sanity checks and overhead ablations.
	events map[string]int64

	// clock timestamps degraded-mode warnings with virtual time; nil means
	// zero timestamps (standalone collectors outside a simulation).
	clock func() sim.Time
	// degradedSince tracks, per topic, when its producer entered degraded
	// mode. The collector runs on the simulation goroutine, so no lock.
	degradedSince map[string]sim.Time
}

// NewCollector creates the topics (2 partitions each, as a small Mofka
// deployment would) and producers on the given broker. Producers report
// degraded episodes (broker unreachable, events buffering) back through the
// collector, which records them on the warnings topic as
// producer_degraded events.
func NewCollector(broker *mofka.Broker, opts mofka.ProducerOptions) (*Collector, error) {
	c, err := NewCollectorBus(broker.Bus(), 2, opts)
	if err != nil {
		return nil, err
	}
	c.broker = broker
	return c, nil
}

// NewCollectorBus is NewCollector against any Mofka deployment reachable
// through the Bus interface — a standalone broker or a sharded, replicated
// cluster (internal/mofka/cluster). partitions sets the per-topic partition
// count (<=0 means 2).
func NewCollectorBus(bus mofka.Bus, partitions int, opts mofka.ProducerOptions) (*Collector, error) {
	if partitions <= 0 {
		partitions = 2
	}
	c := &Collector{
		producers:     make(map[string]mofka.Pusher),
		events:        make(map[string]int64),
		degradedSince: make(map[string]sim.Time),
	}
	for _, name := range AllTopics() {
		t, err := bus.EnsureTopic(mofka.TopicConfig{Name: name, Partitions: partitions})
		if err != nil {
			return nil, fmt.Errorf("core: create topic %s: %w", name, err)
		}
		topicOpts := opts
		topic := name
		topicOpts.OnDegraded = func(err error) { c.producerDegraded(topic, err) }
		topicOpts.OnRecovered = func() { c.producerRecovered(topic) }
		c.producers[name] = t.Producer(topicOpts)
	}
	return c, nil
}

// SetClock injects the virtual-time source used to timestamp degraded-mode
// warnings.
func (c *Collector) SetClock(clock func() sim.Time) { c.clock = clock }

func (c *Collector) now() sim.Time {
	if c.clock == nil {
		return 0
	}
	return c.clock()
}

// Broker returns the broker the collector publishes to, or nil when the
// collector targets a cluster Bus (read the cluster's ReadView instead).
func (c *Collector) Broker() *mofka.Broker { return c.broker }

// producerDegraded and producerRecovered are the producer resilience hooks:
// both episodes land on the warnings topic, so a degraded provenance
// pipeline documents its own gap. The warnings producer buffers too, so
// these events survive even when the broker is the thing that failed.
func (c *Collector) producerDegraded(topic string, err error) {
	at := c.now()
	c.degradedSince[topic] = at
	c.pushWarning(dask.Warning{
		Kind: dask.WarnProducerDegraded, Worker: "collector/" + topic, At: at,
		Message: fmt.Sprintf("producer for topic %s degraded (buffering): %v", topic, err),
	})
}

func (c *Collector) producerRecovered(topic string) {
	at := c.now()
	since, ok := c.degradedSince[topic]
	if !ok {
		since = at
	}
	delete(c.degradedSince, topic)
	c.pushWarning(dask.Warning{
		Kind: dask.WarnProducerDegraded, Worker: "collector/" + topic, At: at,
		Duration: at - since,
		Message:  fmt.Sprintf("producer for topic %s recovered after %v", topic, at-since),
	})
}

func (c *Collector) pushWarning(w dask.Warning) {
	c.push(TopicWarnings, WarningEvent(w))
}

// push publishes one event. Structural failures (invalid event, missing
// partition, closed broker) panic — they indicate a broken in-process
// pipeline. Transient append failures do not: the producer keeps the batch
// buffered and retries, and the degraded-mode hooks document the episode.
func (c *Collector) push(topic string, m mofka.Metadata) {
	c.events[topic]++
	err := c.producers[topic].Push(m, nil)
	if err == nil {
		return
	}
	if errors.Is(err, mofka.ErrInvalidEvent) || errors.Is(err, mofka.ErrNoPartition) || errors.Is(err, mofka.ErrClosed) {
		panic(fmt.Sprintf("core: push to %s: %v", topic, err))
	}
}

// Flush ships all pending producer batches (call at end of run).
func (c *Collector) Flush() error {
	for name, p := range c.producers {
		if err := p.Flush(); err != nil {
			return fmt.Errorf("core: flush %s: %w", name, err)
		}
	}
	return nil
}

// EventCount reports how many events were pushed to a topic.
func (c *Collector) EventCount(topic string) int64 { return c.events[topic] }

// TotalEvents reports the number of events pushed across all topics.
func (c *Collector) TotalEvents() int64 {
	var n int64
	for _, v := range c.events {
		n += v
	}
	return n
}

// SchedulerPlugin returns the dask.SchedulerPlugin that streams scheduler
// events into Mofka.
func (c *Collector) SchedulerPlugin() dask.SchedulerPlugin { return &schedPlugin{c} }

// WorkerPlugin returns the dask.WorkerPlugin that streams worker events
// into Mofka.
func (c *Collector) WorkerPlugin() dask.WorkerPlugin { return &workerPlugin{c} }

type schedPlugin struct{ c *Collector }

func (p *schedPlugin) TaskAdded(m dask.TaskMeta) { p.c.push(TopicTaskMeta, TaskMetaEvent(m)) }
func (p *schedPlugin) SchedulerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *schedPlugin) GraphDone(id int, at sim.Time) { p.c.push(TopicGraphs, GraphDoneEvent(id, at)) }
func (p *schedPlugin) Stolen(ev dask.StealEvent)     { p.c.push(TopicSteals, StealEventMeta(ev)) }
func (p *schedPlugin) Speculation(ev dask.SpeculationEvent) {
	p.c.push(TopicSpeculation, SpeculationEventMeta(ev))
}

type workerPlugin struct{ c *Collector }

func (p *workerPlugin) WorkerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *workerPlugin) TaskExecuted(rec dask.TaskExecution) {
	p.c.push(TopicExecutions, ExecutionEvent(rec))
}
func (p *workerPlugin) TransferReceived(rec dask.Transfer) {
	p.c.push(TopicTransfers, TransferEvent(rec))
}
func (p *workerPlugin) WorkerWarning(w dask.Warning) { p.c.push(TopicWarnings, WarningEvent(w)) }
func (p *workerPlugin) Heartbeat(m dask.WorkerMetrics) {
	p.c.push(TopicHeartbeats, HeartbeatEvent(m))
}
func (p *workerPlugin) ProxyEvent(ev dask.ProxyEvent) {
	p.c.push(TopicProxy, ProxyEventMeta(ev))
}
