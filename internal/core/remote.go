package core

import (
	"fmt"
	"sync"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// RemoteCollector streams provenance events to a Mofka broker reached over
// Mercury RPC (typically a cmd/mofkad daemon on another node) instead of an
// in-process broker — the deployment where analysis consumers run remotely
// while the workflow executes. It batches client-side like the in-process
// producer.
type RemoteCollector struct {
	remote *mofka.Remote

	mu      sync.Mutex
	batch   map[string][][]byte // topic -> pending metadata
	size    int
	rr      map[string]int
	nparts  map[string]int
	pushed  int64
	flushes int64
}

// NewRemoteCollector creates the provenance topics on the remote broker and
// returns a collector batching up to batchSize events per topic.
func NewRemoteCollector(remote *mofka.Remote, batchSize int) (*RemoteCollector, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	c := &RemoteCollector{
		remote: remote,
		batch:  make(map[string][][]byte),
		size:   batchSize,
		rr:     make(map[string]int),
		nparts: make(map[string]int),
	}
	for _, name := range AllTopics() {
		if err := remote.CreateTopic(mofka.TopicConfig{Name: name, Partitions: 2}); err != nil {
			return nil, fmt.Errorf("core: remote topic %s: %w", name, err)
		}
		parts, _, err := remote.TopicInfo(name)
		if err != nil {
			return nil, err
		}
		c.nparts[name] = parts
	}
	return c, nil
}

func (c *RemoteCollector) push(topic string, m mofka.Metadata) {
	c.mu.Lock()
	c.batch[topic] = append(c.batch[topic], m.Encode())
	c.pushed++
	full := len(c.batch[topic]) >= c.size
	var metas [][]byte
	if full {
		metas = c.batch[topic]
		c.batch[topic] = nil
	}
	c.mu.Unlock()
	if full {
		c.ship(topic, metas)
	}
}

func (c *RemoteCollector) ship(topic string, metas [][]byte) {
	if len(metas) == 0 {
		return
	}
	c.mu.Lock()
	part := c.rr[topic] % c.nparts[topic]
	c.rr[topic]++
	c.flushes++
	c.mu.Unlock()
	datas := make([][]byte, len(metas))
	if err := c.remote.PushBatch(topic, part, metas, datas); err != nil {
		// The remote broker vanished mid-run; provenance loss is reported
		// loudly but must not kill the workflow.
		fmt.Printf("core: remote collector: push to %s failed: %v\n", topic, err)
	}
}

// Flush ships every pending batch.
func (c *RemoteCollector) Flush() {
	c.mu.Lock()
	pending := make(map[string][][]byte, len(c.batch))
	for t, m := range c.batch {
		if len(m) > 0 {
			pending[t] = m
			c.batch[t] = nil
		}
	}
	c.mu.Unlock()
	for t, m := range pending {
		c.ship(t, m)
	}
}

// Stats reports events pushed and batches shipped.
func (c *RemoteCollector) Stats() (pushed, flushes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pushed, c.flushes
}

// SchedulerPlugin returns the dask.SchedulerPlugin streaming to the remote.
func (c *RemoteCollector) SchedulerPlugin() dask.SchedulerPlugin { return &remoteSchedPlugin{c} }

// WorkerPlugin returns the dask.WorkerPlugin streaming to the remote.
func (c *RemoteCollector) WorkerPlugin() dask.WorkerPlugin { return &remoteWorkerPlugin{c} }

type remoteSchedPlugin struct{ c *RemoteCollector }

func (p *remoteSchedPlugin) TaskAdded(m dask.TaskMeta) { p.c.push(TopicTaskMeta, TaskMetaEvent(m)) }
func (p *remoteSchedPlugin) SchedulerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *remoteSchedPlugin) GraphDone(id int, at sim.Time) {
	p.c.push(TopicGraphs, GraphDoneEvent(id, at))
}
func (p *remoteSchedPlugin) Stolen(ev dask.StealEvent) { p.c.push(TopicSteals, StealEventMeta(ev)) }
func (p *remoteSchedPlugin) Speculation(ev dask.SpeculationEvent) {
	p.c.push(TopicSpeculation, SpeculationEventMeta(ev))
}

type remoteWorkerPlugin struct{ c *RemoteCollector }

func (p *remoteWorkerPlugin) WorkerTransition(t dask.Transition) {
	p.c.push(TopicTransitions, TransitionEvent(t))
}
func (p *remoteWorkerPlugin) TaskExecuted(rec dask.TaskExecution) {
	p.c.push(TopicExecutions, ExecutionEvent(rec))
}
func (p *remoteWorkerPlugin) TransferReceived(rec dask.Transfer) {
	p.c.push(TopicTransfers, TransferEvent(rec))
}
func (p *remoteWorkerPlugin) WorkerWarning(w dask.Warning) {
	p.c.push(TopicWarnings, WarningEvent(w))
}
func (p *remoteWorkerPlugin) Heartbeat(m dask.WorkerMetrics) {
	p.c.push(TopicHeartbeats, HeartbeatEvent(m))
}
func (p *remoteWorkerPlugin) ProxyEvent(ev dask.ProxyEvent) {
	p.c.push(TopicProxy, ProxyEventMeta(ev))
}
