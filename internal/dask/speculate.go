package dask

import (
	"fmt"
	"math"
	"sort"

	"taskprov/internal/sim"
)

// SpeculationAdvisor is an external straggler detector the scheduler's
// speculation tick consults — the live pipeline's MAD-based anomaly detector
// implements it. Observe feeds one completed duration per prefix; Straggler
// asks whether a task of that prefix that has been running for
// elapsedSeconds should be hedged. When an advisor is installed it widens
// detection: a task is speculated when either the advisor or the built-in
// per-prefix quantile policy flags it.
type SpeculationAdvisor interface {
	Observe(prefix string, seconds float64)
	Straggler(prefix string, elapsedSeconds float64) bool
}

// specMinSamples is how many completed durations a prefix needs before the
// built-in quantile policy trusts its empirical distribution; below it the
// occupancy estimate (prefix mean or DefaultTaskDuration) stands in.
const specMinSamples = 8

// specSampleCap bounds the per-prefix duration history; when full, the older
// half is discarded (recent completions dominate under changing conditions).
const specSampleCap = 4096

// observeSpecDuration feeds one completed duration into the speculation
// policy's per-prefix history and the external advisor, if any.
func (s *Scheduler) observeSpecDuration(prefix string, dur sim.Time) {
	if s.specAdvisor != nil {
		s.specAdvisor.Observe(prefix, dur.Seconds())
	}
	if !s.c.cfg.Speculation.Enabled {
		return
	}
	samples := s.specSamples[prefix]
	if len(samples) >= specSampleCap {
		samples = append(samples[:0], samples[specSampleCap/2:]...)
	}
	s.specSamples[prefix] = append(samples, dur.Seconds())
}

// quantileAt returns the q-quantile of samples by linear interpolation.
func quantileAt(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// stragglerThreshold is the elapsed-seconds bar beyond which a running task
// of the given prefix counts as straggling under the built-in policy:
// SlowFactor times the prefix's completed-duration quantile (or, with too few
// samples, the occupancy estimate).
func (s *Scheduler) stragglerThreshold(prefix string) float64 {
	cfg := s.c.cfg.Speculation
	if samples := s.specSamples[prefix]; len(samples) >= specMinSamples {
		return quantileAt(samples, cfg.Quantile) * cfg.SlowFactor
	}
	return s.estimate(prefix).Seconds() * cfg.SlowFactor
}

// isStraggler reports whether a task of the given prefix, running for
// elapsed, should be hedged.
func (s *Scheduler) isStraggler(prefix string, elapsed sim.Time) bool {
	if s.specAdvisor != nil && s.specAdvisor.Straggler(prefix, elapsed.Seconds()) {
		return true
	}
	return elapsed.Seconds() > s.stragglerThreshold(prefix)
}

// emitSpeculation fans a speculation decision out to the scheduler plugins,
// landing it on the speculation provenance topic.
func (s *Scheduler) emitSpeculation(ev SpeculationEvent) {
	for _, p := range s.c.schedPlugins {
		p.Speculation(ev)
	}
}

// SpeculativeLaunches reports how many duplicate attempts were dispatched.
func (s *Scheduler) SpeculativeLaunches() int { return s.specLaunches }

// speculationTick scans processing tasks for stragglers and hedges them,
// bounded by the in-flight cap and the per-run budget. Candidates are
// examined in priority order so the decision sequence reproduces per seed.
func (s *Scheduler) speculationTick() {
	cfg := s.c.cfg.Speculation
	if s.specLaunches >= cfg.Budget || s.specInFlight >= cfg.MaxConcurrent {
		return
	}
	now := s.c.kernel.Now()
	var cands []*schedTask
	for _, ts := range s.tasks {
		if ts.state != StateProcessing || ts.speculating || s.stealing[ts.spec.Key] {
			continue
		}
		if !s.workers[ts.processingOn].connected {
			continue // eviction is about to recover it anyway
		}
		elapsed := now - ts.startedAt
		if elapsed < cfg.MinRuntime {
			continue
		}
		if !s.isStraggler(ts.spec.Prefix(), elapsed) {
			continue
		}
		cands = append(cands, ts)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].priority < cands[j].priority })
	for _, ts := range cands {
		if s.specInFlight >= cfg.MaxConcurrent || s.specLaunches >= cfg.Budget {
			return
		}
		s.speculate(ts, now)
	}
}

// decideDuplicate picks the worker for a duplicate attempt: any connected
// worker other than the primary (restrictions permitting), scored with the
// same occupancy + fetch-cost objective as decideWorker. Returns nil when no
// second worker is available.
func (s *Scheduler) decideDuplicate(ts *schedTask) *workerHandle {
	const netBW = 100e6
	allowed := func(wh *workerHandle) bool {
		if len(ts.spec.Restrictions) == 0 {
			return true
		}
		for _, r := range ts.spec.Restrictions {
			if r == wh.w.addr {
				return true
			}
		}
		return false
	}
	var best []*workerHandle
	bestScore := math.Inf(1)
	for _, wh := range s.workers {
		if !wh.connected || wh.rank == ts.processingOn || !allowed(wh) {
			continue
		}
		fetch := int64(0)
		missing := 0
		for _, d := range ts.spec.Deps {
			dt := s.tasks[d]
			if dt == nil {
				continue
			}
			if _, has := dt.whoHas[wh.rank]; !has {
				fetch += dt.size
				missing++
			}
		}
		score := wh.occupancy.Seconds()/float64(s.c.cfg.ThreadsPerWorker) +
			float64(fetch)/netBW + 0.01*float64(missing)
		switch {
		case score < bestScore-1e-9:
			bestScore = score
			best = best[:0]
			best = append(best, wh)
		case score <= bestScore+1e-9:
			best = append(best, wh)
		}
	}
	if len(best) == 0 {
		return nil
	}
	return best[s.rng.Intn(len(best))]
}

// speculate launches a duplicate attempt of a flagged straggler on a second
// worker. The task stays in StateProcessing on its primary; the duplicate
// rides the same assignment path, and whichever attempt reports first wins.
func (s *Scheduler) speculate(ts *schedTask, now sim.Time) {
	wh := s.decideDuplicate(ts)
	if wh == nil {
		return
	}
	primary := s.workers[ts.processingOn]
	ts.speculating = true
	ts.speculativeOn = wh.rank
	ts.specStartedAt = now
	s.specInFlight++
	s.specLaunches++
	wh.processing[ts.spec.Key] = struct{}{}
	wh.occupancy += s.estimate(ts.spec.Prefix())
	s.emitSpeculation(SpeculationEvent{
		Kind: SpecLaunched, Key: ts.spec.Key,
		Primary: primary.w.addr, Duplicate: wh.w.addr,
		Detail: fmt.Sprintf("straggling for %s on %s", (now - ts.startedAt).String(), primary.w.addr),
		At:     now,
	})
	s.sendAssignment(ts, wh)
}

// settleSpeculation resolves a speculated task in favor of the attempt on
// winnerRank: the losing attempt's bookkeeping is undone, the win/cancel
// event pair is emitted, and a cancel message fences the loser worker-side.
// Called from handleFinished before the normal completion path runs.
func (s *Scheduler) settleSpeculation(ts *schedTask, winnerRank int) {
	key := ts.spec.Key
	now := s.c.kernel.Now()
	primaryAddr := s.workers[ts.processingOn].w.addr
	dupAddr := s.workers[ts.speculativeOn].w.addr
	loserRank := ts.speculativeOn
	loserStart := ts.specStartedAt
	if winnerRank == ts.speculativeOn {
		loserRank = ts.processingOn
		loserStart = ts.startedAt
		// The surviving attempt is now the task's only attempt.
		ts.processingOn = winnerRank
		ts.startedAt = ts.specStartedAt
	}
	ts.speculating = false
	ts.speculativeOn = -1
	s.specInFlight--
	lw := s.workers[loserRank]
	delete(lw.processing, key)
	lw.occupancy -= s.estimate(ts.spec.Prefix())
	if lw.occupancy < 0 {
		lw.occupancy = 0
	}
	s.emitSpeculation(SpeculationEvent{
		Kind: SpecWon, Key: key, Primary: primaryAddr, Duplicate: dupAddr,
		Winner: s.workers[winnerRank].w.addr, At: now,
	})
	s.emitSpeculation(SpeculationEvent{
		Kind: SpecCancelled, Key: key, Primary: primaryAddr, Duplicate: dupAddr,
		Wasted: now - loserStart,
		Detail: fmt.Sprintf("losing attempt on %s cancelled", lw.w.addr),
		At:     now,
	})
	if lw.connected && lw.w.alive {
		w := lw.w
		s.c.control(s.node, w.node, func() { w.handleCancel(key) })
	}
}

// clearSpeculation abandons a task's duplicate attempt (it erred, its worker
// died, or it surrendered mid-fetch); the primary attempt continues alone.
// The duplicate's handle bookkeeping is undone unless its worker was already
// evicted (eviction zeroes the handle wholesale).
func (s *Scheduler) clearSpeculation(ts *schedTask, detail string) {
	key := ts.spec.Key
	lw := s.workers[ts.speculativeOn]
	if lw.connected {
		delete(lw.processing, key)
		lw.occupancy -= s.estimate(ts.spec.Prefix())
		if lw.occupancy < 0 {
			lw.occupancy = 0
		}
	}
	s.emitSpeculation(SpeculationEvent{
		Kind: SpecFailed, Key: key,
		Primary:   s.workers[ts.processingOn].w.addr,
		Duplicate: lw.w.addr,
		Detail:    detail, At: s.c.kernel.Now(),
	})
	ts.speculating = false
	ts.speculativeOn = -1
	s.specInFlight--
}

// promoteSpeculative makes a task's duplicate attempt its only attempt after
// the primary died or surrendered. The caller has already undone the
// primary's handle bookkeeping; the task stays in StateProcessing.
func (s *Scheduler) promoteSpeculative(ts *schedTask, detail string) {
	s.emitSpeculation(SpeculationEvent{
		Kind: SpecPromoted, Key: ts.spec.Key,
		Primary:   s.workers[ts.processingOn].w.addr,
		Duplicate: s.workers[ts.speculativeOn].w.addr,
		Detail:    detail, At: s.c.kernel.Now(),
	})
	ts.processingOn = ts.speculativeOn
	ts.startedAt = ts.specStartedAt
	ts.speculating = false
	ts.speculativeOn = -1
	s.specInFlight--
}
