package workloads

import (
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/dask"
)

func runOnce(t *testing.T, name string, seed uint64) *core.RunArtifacts {
	t.Helper()
	wf, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Run(DefaultSession(name, "job-"+name, seed), wf)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func checkTableI(t *testing.T, name string, art *core.RunArtifacts) {
	t.Helper()
	want := TableI[name]
	graphs, err := art.TaskGraphs()
	if err != nil || graphs != want.TaskGraphs {
		t.Errorf("%s: task graphs = %d, want %d (%v)", name, graphs, want.TaskGraphs, err)
	}
	tasks, err := art.DistinctTasks()
	if err != nil || tasks != want.DistinctTasks {
		t.Errorf("%s: distinct tasks = %d, want %d (%v)", name, tasks, want.DistinctTasks, err)
	}
	if files := art.DistinctFiles(); files != want.DistinctFiles {
		t.Errorf("%s: distinct files = %d, want %d", name, files, want.DistinctFiles)
	}
	if ops := art.TotalIOOps(); ops < want.IOOpsLow || ops > want.IOOpsHigh {
		t.Errorf("%s: io ops = %d, want in [%d, %d]", name, ops, want.IOOpsLow, want.IOOpsHigh)
	}
	// Communications depend on emergent scheduling; allow a generous band
	// around the published range (same order, same ranking across
	// workflows is asserted separately).
	comms, err := art.TotalCommunications()
	if err != nil {
		t.Fatal(err)
	}
	lo := want.CommsLow / 2
	hi := want.CommsHigh * 2
	if comms < lo || comms > hi {
		t.Errorf("%s: communications = %d, want within [%d, %d] (paper: %d-%d)",
			name, comms, lo, hi, want.CommsLow, want.CommsHigh)
	}
	t.Logf("%s: graphs=%d tasks=%d files=%d ops=%d comms=%d wall=%.1fs",
		name, graphs, tasks, art.DistinctFiles(), art.TotalIOOps(), comms, art.Meta.WallSeconds)
}

func TestImageProcessingTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	w := NewImageProcessing()
	if got := w.ExpectedTasks(); got != TableI["imageprocessing"].DistinctTasks {
		t.Fatalf("ExpectedTasks = %d", got)
	}
	if got := w.ExpectedFiles(); got != TableI["imageprocessing"].DistinctFiles {
		t.Fatalf("ExpectedFiles = %d", got)
	}
	art := runOnce(t, "imageprocessing", 1)
	checkTableI(t, "imageprocessing", art)
	// Wall time "around one hundred seconds" (paper §IV-C): accept a wide
	// band, it is a simulator.
	if w := art.Meta.WallSeconds; w < 30 || w > 300 {
		t.Errorf("imageprocessing wall = %.1fs, want O(100s)", w)
	}
}

func TestResNet152TableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	w := NewResNet152()
	if got := w.ExpectedTasks(); got != TableI["resnet152"].DistinctTasks {
		t.Fatalf("ExpectedTasks = %d", got)
	}
	art := runOnce(t, "resnet152", 1)
	checkTableI(t, "resnet152", art)
	// The DXT truncation must actually have happened: the POSIX-counter op
	// count exceeds the DXT-observed one and the logs are flagged partial.
	if art.TotalPosixOps() <= art.TotalIOOps() {
		t.Errorf("resnet152: posix ops %d <= dxt ops %d; truncation missing",
			art.TotalPosixOps(), art.TotalIOOps())
	}
	partial := false
	for _, l := range art.DarshanLogs {
		if l.Job.Partial && l.Job.DXTDropped > 0 {
			partial = true
		}
	}
	if !partial {
		t.Error("resnet152: no darshan log flagged partial")
	}
}

func TestXGBoostTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	w := NewXGBoost()
	if got := w.ExpectedTasks(); got != TableI["xgboost"].DistinctTasks {
		t.Fatalf("ExpectedTasks = %d", got)
	}
	art := runOnce(t, "xgboost", 1)
	checkTableI(t, "xgboost", art)

	// Fig. 7: a burst of unresponsive-event-loop warnings early in the run,
	// correlated with the read_parquet-fused-assign tasks.
	warns, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		t.Fatal(err)
	}
	var loopWarns int
	var lastWarnAt float64
	for _, m := range warns {
		w := core.ParseWarning(m)
		if w.Kind == dask.WarnEventLoop {
			loopWarns++
			if w.At.Seconds() > lastWarnAt {
				lastWarnAt = w.At.Seconds()
			}
		}
	}
	if loopWarns < 200 || loopWarns > 400 {
		t.Errorf("xgboost: event-loop warnings = %d, want ~297", loopWarns)
	}
	if lastWarnAt > 500 {
		t.Errorf("xgboost: event-loop warnings extend to %.0fs, want within first 500s", lastWarnAt)
	}

	// Fig. 6: the read_parquet-fused-assign outputs exceed Dask's
	// recommended 128 MB.
	execs, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		t.Fatal(err)
	}
	var readMax, readMin int64
	for _, m := range execs {
		e := core.ParseExecution(m)
		if dask.KeyPrefix(e.Key) == "read_parquet-fused-assign" {
			if readMin == 0 || e.OutputSize < readMin {
				readMin = e.OutputSize
			}
			if e.OutputSize > readMax {
				readMax = e.OutputSize
			}
		}
	}
	if readMin <= 128<<20 {
		t.Errorf("xgboost: smallest fused-read output = %d, want > 128MB", readMin)
	}
	if readMax == 0 {
		t.Error("xgboost: no read_parquet-fused-assign executions found")
	}
}

func TestWorkflowRegistry(t *testing.T) {
	for _, name := range Names() {
		wf, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, wf.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown workflow accepted")
	}
	if Runs("xgboost") != 50 || Runs("resnet152") != 10 {
		t.Fatal("Runs() wrong")
	}
}

func TestDatasetFixedAcrossConstruction(t *testing.T) {
	a, b := NewImageProcessing(), NewImageProcessing()
	for i := range a.chunks {
		if a.chunks[i] != b.chunks[i] {
			t.Fatal("ImageProcessing dataset differs between constructions")
		}
	}
	x, y := NewXGBoost(), NewXGBoost()
	for i := range x.fileSize {
		if x.fileSize[i] != y.fileSize[i] {
			t.Fatal("XGBoost dataset differs between constructions")
		}
	}
}

func TestImageChunkBounds(t *testing.T) {
	w := NewImageProcessing()
	sum := 0
	for _, c := range w.chunks {
		if c < 10 || c > 25 {
			t.Fatalf("chunk count %d out of the paper's 10-25 band", c)
		}
		sum += c
	}
	if sum != w.totalChunks {
		t.Fatal("totalChunks inconsistent")
	}
}

func TestPseudoHashStability(t *testing.T) {
	if pseudoHash("a", 1) != pseudoHash("a", 1) {
		t.Fatal("pseudoHash unstable")
	}
	if pseudoHash("a", 1) == pseudoHash("a", 2) {
		t.Fatal("pseudoHash collision on trivial input")
	}
	if got := tupleKey("getitem", "abc123", 63); got != "('getitem-abc123', 63)" {
		t.Fatalf("tupleKey = %q", got)
	}
}

func TestTableIStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run study")
	}
	// The structural metrics must be seed-invariant; the emergent ones must
	// stay within their (generous) bands across several seeds.
	for seed := uint64(2); seed <= 4; seed++ {
		for _, name := range []string{"imageprocessing", "xgboost"} {
			art := runOnce(t, name, seed)
			want := TableI[name]
			tasks, _ := art.DistinctTasks()
			if tasks != want.DistinctTasks {
				t.Errorf("%s seed %d: tasks = %d", name, seed, tasks)
			}
			if f := art.DistinctFiles(); f != want.DistinctFiles {
				t.Errorf("%s seed %d: files = %d", name, seed, f)
			}
			if ops := art.TotalIOOps(); ops < want.IOOpsLow || ops > want.IOOpsHigh {
				t.Errorf("%s seed %d: ops = %d not in [%d,%d]", name, seed, ops, want.IOOpsLow, want.IOOpsHigh)
			}
			comms, _ := art.TotalCommunications()
			if comms < want.CommsLow/2 || comms > want.CommsHigh*2 {
				t.Errorf("%s seed %d: comms = %d not within 2x of [%d,%d]",
					name, seed, comms, want.CommsLow, want.CommsHigh)
			}
		}
	}
}
