// Provenance example: demonstrate the collect-separately / fuse-at-analysis
// pipeline end to end — run a workflow, persist its artifacts to disk (the
// same layout cmd/taskprov writes), load them back (as cmd/perfrecup does),
// attribute every POSIX operation to the task that issued it, and export a
// fused view as CSV.
//
//	go run ./examples/provenance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/perfrecup/frame"
	"taskprov/internal/workloads"
)

func main() {
	wf, err := workloads.New("imageprocessing")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultSession("imageprocessing", "prov-example", 11)
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "taskprov-run-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	runDir := filepath.Join(dir, "imageprocessing-0011")
	if err := art.WriteDir(runDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts written to %s:\n", runDir)
	_ = filepath.Walk(runDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			rel, _ := filepath.Rel(runDir, path)
			fmt.Printf("  %-34s %8d bytes\n", rel, info.Size())
		}
		return nil
	})

	// Reload, as an analysis process on another machine would.
	loaded, err := core.LoadDir(runDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded run: workflow=%s seed=%d platform=%s wall=%.1fs\n",
		loaded.Meta.Workflow, loaded.Meta.Seed, loaded.Meta.Platform.Platform, loaded.Meta.WallSeconds)

	// Fuse Darshan DXT with task executions on (hostname, pthread ID,
	// timestamps) and summarize I/O per task category.
	sum, err := perfrecup.TaskIOSummary(loaded)
	if err != nil {
		log.Fatal(err)
	}
	agg := sum.GroupBy("prefix").Agg(
		frame.Agg{Col: "io_ops", Fn: frame.Sum, As: "ops"},
		frame.Agg{Col: "io_bytes", Fn: frame.Sum, As: "bytes"},
	)
	fmt.Println("\nI/O attributed per task category:")
	for i := 0; i < agg.NRows(); i++ {
		fmt.Printf("  %-14s %6.0f ops %10.1f MB\n",
			agg.Col("prefix").Str(i), agg.Col("ops").Float(i), agg.Col("bytes").Float(i)/(1<<20))
	}

	// Export the fused view as CSV for external tools (pandas, R, ...).
	out := filepath.Join(dir, "task_io.csv")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := sum.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(out)
	fmt.Printf("\nfused view exported: %s (%d bytes)\n", out, st.Size())
}
