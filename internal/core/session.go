package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"taskprov/internal/chaos"
	"taskprov/internal/darshan"
	"taskprov/internal/dask"
	"taskprov/internal/live"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
	mcluster "taskprov/internal/mofka/cluster"
	"taskprov/internal/mofka/wal"
	"taskprov/internal/pfs"
	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/proxystore"
	"taskprov/internal/resume"
	"taskprov/internal/sim"
	"taskprov/internal/whatif"
)

// Env exposes the run's substrate to workflow implementations (dataset
// staging, extra observers).
type Env struct {
	Kernel   *sim.Kernel
	Platform *platform.Cluster
	PFS      *pfs.FileSystem
	FS       *posixio.FS
	Cluster  *dask.Cluster
	RNG      *sim.RNG
}

// Workflow is implemented by workload generators: Stage pre-populates input
// datasets on the PFS (before timing starts), Run drives the client program.
type Workflow interface {
	Name() string
	Stage(env *Env)
	Run(p *sim.Proc, cl *dask.Client, env *Env)
}

// SessionConfig describes one instrumented run.
type SessionConfig struct {
	JobID    string
	Seed     uint64
	Platform platform.Config
	PFS      pfs.Config
	Dask     dask.Config

	// DarshanDXT enables extended tracing; DXTBufferSegments caps the
	// per-process trace buffer (0 = darshan.DefaultDXTBufferSegments).
	DarshanDXT        bool
	DXTBufferSegments int

	// DarshanMaxFileRecords caps the per-process file record table
	// (0 = darshan.DefaultMaxFileRecords).
	DarshanMaxFileRecords int

	// Mofka producer batching for the provenance stream.
	MofkaBatchSize int

	// ChaosSpec, when non-empty, arms the fault-injection plan parsed from
	// it (see internal/chaos) before the run starts: worker kills/restarts
	// and brownouts (the "slow" directive) at virtual times, link
	// degradations ("net"), broker append faults, and whole-coordinator
	// kills (the "scheduler" directive, which aborts the session with a
	// CrashError so the run can be continued with ResumeFrom). The same seed
	// and spec reproduce the identical failure and recovery event sequence.
	ChaosSpec string

	// Speculation enables and tunes speculative (hedged) execution of
	// straggling tasks: the scheduler subscribes to the live straggler
	// detector (internal/live MAD z-scores) and launches a bounded number of
	// duplicate attempts; first completion wins, the loser is cancelled with
	// attempt fencing. When Enabled it overrides Dask.Speculation; every
	// decision lands on the "speculation" provenance topic.
	Speculation dask.SpeculationConfig

	// RetryBudget is the per-run allowance of Mercury RPC retries handed to
	// every caller the session wraps (WrapCaller): under a gray failure the
	// adaptive retry policy spends at most this many extra calls run-wide,
	// then degrades to clean errors. 0 means DefaultRetryBudget; negative
	// grants none.
	RetryBudget int

	// MofkaDataDir, when set, backs the run's broker with the durable
	// segmented event log rooted there (internal/mofka/wal): every
	// provenance event is crash-safe on disk and the directory can be
	// analyzed post-mortem with perfrecup, without JSONL export. Ignored
	// when an external broker is passed to RunOnBroker.
	MofkaDataDir string
	// MofkaSyncPolicy selects the event log's fsync policy: "batch"
	// (default), "interval", or "never". See wal.ParseSyncPolicy.
	MofkaSyncPolicy string

	// ResumeFrom, when set, continues a crashed run from its data dir: the
	// provenance WAL (and frontier checkpoint) there is reconstructed into
	// scheduler state, completed tasks are memoized, outputs are revalidated
	// against surviving proxy-store blobs, and the session appends to the
	// same data dir as a new attempt (recorded in attempts.json). The
	// session must otherwise be configured identically to the crashed one
	// (same seed, platform, workflow — taskprov resume rebuilds this from
	// the dir's metadata.json). MofkaDataDir, if also set, must equal
	// ResumeFrom.
	ResumeFrom string

	// CheckpointInterval is the period of the lightweight frontier
	// checkpoint (completed-task high-water marks per graph plus live blob
	// residency) written next to the durable event log, so resume cost is
	// O(crash tail), not O(run). Zero means the 5s default; negative
	// disables periodic checkpointing (resume then replays the whole WAL).
	// Ignored without MofkaDataDir/ResumeFrom.
	CheckpointInterval time.Duration

	// ClusterBrokers, when > 0, backs the provenance stream with a sharded,
	// replicated Mofka cluster of that many broker replicas instead of a
	// single broker (internal/mofka/cluster): topic partitions spread over
	// the replicas by rendezvous hashing, appends are quorum-acknowledged,
	// and a broker crash (see the chaos "broker" directive) fails affected
	// partitions over to surviving replicas without losing acknowledged
	// events. RunArtifacts.Broker then holds the cluster's merged read view
	// and RunArtifacts.Cluster the live cluster handle. Incompatible with an
	// external broker passed to RunOnBroker.
	ClusterBrokers int
	// ClusterReplication is the replica count per partition (0 = the
	// cluster default, 2 capped at the broker count). Must be <=
	// ClusterBrokers.
	ClusterReplication int
	// ClusterQuorum is the acknowledgement quorum per append (0 = majority
	// of the replication factor). Must be <= ClusterReplication.
	ClusterQuorum int

	// DisableCollection turns off all instrumentation (for overhead
	// ablations): no plugins, no Darshan tracers.
	DisableCollection bool

	// LiveMonitor attaches an internal/live Monitor to the run's broker:
	// streaming aggregation and online anomaly detection while the
	// workflow executes, with the final Summary in RunArtifacts.Live. The
	// monitor's end-of-run aggregates are guaranteed equal to the
	// post-mortem PERFRECUP views over the same artifacts.
	LiveMonitor bool
	// LiveHTTPAddr, when set together with LiveMonitor, serves the live
	// snapshot/metrics/SSE endpoints on this address for the duration of
	// the run (e.g. "127.0.0.1:9090").
	LiveHTTPAddr string
	// LiveOptions tunes the monitor (zero value = defaults).
	LiveOptions live.MonitorOptions
}

// Validate rejects impossible session configurations with a clear error
// before any resource is built — negative or absurd knob values surface
// here instead of as confusing failures mid-run. Run/RunOnBroker call it
// first; commands should call it right after flag parsing.
func (cfg SessionConfig) Validate() error {
	if cfg.MofkaBatchSize < 0 {
		return fmt.Errorf("core: negative Mofka batch size %d", cfg.MofkaBatchSize)
	}
	if cfg.MofkaBatchSize > 1<<20 {
		return fmt.Errorf("core: Mofka batch size %d is absurd (max %d)", cfg.MofkaBatchSize, 1<<20)
	}
	if cfg.DXTBufferSegments < 0 {
		return fmt.Errorf("core: negative DXT buffer segments %d", cfg.DXTBufferSegments)
	}
	if cfg.DarshanMaxFileRecords < 0 {
		return fmt.Errorf("core: negative Darshan max file records %d", cfg.DarshanMaxFileRecords)
	}
	if cfg.ClusterBrokers < 0 {
		return fmt.Errorf("core: negative cluster broker count %d", cfg.ClusterBrokers)
	}
	if cfg.Dask.ProxyThresholdBytes < 0 {
		return fmt.Errorf("core: negative proxy threshold %d", cfg.Dask.ProxyThresholdBytes)
	}
	if cfg.Dask.ProxyThresholdBytes == 0 && cfg.Dask.ProxyPrefetch {
		return fmt.Errorf("core: ProxyPrefetch requires a positive ProxyThresholdBytes")
	}
	if cfg.ClusterBrokers == 0 && (cfg.ClusterReplication != 0 || cfg.ClusterQuorum != 0) {
		return fmt.Errorf("core: cluster replication/quorum set without ClusterBrokers")
	}
	if sp := cfg.Speculation; sp.Enabled {
		if sp.Quantile < 0 || sp.Quantile >= 1 {
			return fmt.Errorf("core: speculation quantile %v outside [0, 1)", sp.Quantile)
		}
		if sp.MaxConcurrent < 0 || sp.Budget < 0 {
			return fmt.Errorf("core: negative speculation bound (max_concurrent=%d budget=%d)", sp.MaxConcurrent, sp.Budget)
		}
		if sp.MinRuntime < 0 || sp.Interval < 0 {
			return fmt.Errorf("core: negative speculation duration (min_runtime=%v interval=%v)", sp.MinRuntime, sp.Interval)
		}
	}
	if cfg.ResumeFrom != "" {
		if cfg.DisableCollection {
			return fmt.Errorf("core: ResumeFrom requires collection (resume is reconstructed from the provenance stream)")
		}
		if cfg.MofkaDataDir != "" && cfg.MofkaDataDir != cfg.ResumeFrom {
			return fmt.Errorf("core: ResumeFrom %s conflicts with MofkaDataDir %s (a resumed session appends to the dir it resumes from)", cfg.ResumeFrom, cfg.MofkaDataDir)
		}
	}
	if cfg.ClusterBrokers > 0 {
		ccfg := mcluster.Config{
			Brokers:           cfg.ClusterBrokers,
			ReplicationFactor: cfg.ClusterReplication,
			Quorum:            cfg.ClusterQuorum,
		}
		if err := ccfg.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if cfg.LiveHTTPAddr != "" {
			return fmt.Errorf("core: the live HTTP endpoint requires a standalone broker (cluster runs attach the monitor to the merged read view after the run)")
		}
	}
	return nil
}

// DefaultSessionConfig mirrors the paper's setup: Polaris-like platform with
// 2 worker nodes, Lustre-like storage, 4 workers/node x 8 threads, DXT on.
func DefaultSessionConfig(jobID string, seed uint64) SessionConfig {
	return SessionConfig{
		JobID:          jobID,
		Seed:           seed,
		Platform:       platform.Polaris(),
		PFS:            pfs.Lustre(),
		Dask:           dask.DefaultConfig(),
		DarshanDXT:     true,
		MofkaBatchSize: 64,
	}
}

// DefaultCheckpointInterval is the frontier-checkpoint period used when
// SessionConfig.CheckpointInterval is zero.
const DefaultCheckpointInterval = 5 * time.Second

// CrashError is returned by a session whose coordinator was killed by the
// chaos "scheduler" directive: the whole process is modeled as dying with
// kill -9 — unflushed producer batches are lost, no artifacts are produced,
// and only the durable data dir survives. Detect it with errors.As and
// continue the run with SessionConfig.ResumeFrom (or taskprov resume).
type CrashError struct {
	// At is the virtual time the coordinator died.
	At sim.Time
	// DataDir is the durable event log the run can be resumed from (empty
	// when the run was in-memory only, in which case nothing survives).
	DataDir string
	// Attempt is the incarnation that died.
	Attempt int
}

func (e *CrashError) Error() string {
	if e.DataDir == "" {
		return fmt.Sprintf("core: scheduler killed at %v (attempt %d); no durable log, run not resumable", e.At, e.Attempt)
	}
	return fmt.Sprintf("core: scheduler killed at %v (attempt %d); resume from %s", e.At, e.Attempt, e.DataDir)
}

// RunArtifacts is everything one instrumented run leaves behind: the Mofka
// event topics, per-worker Darshan logs, and the metadata chart.
type RunArtifacts struct {
	Meta        RunMetadata
	Broker      *mofka.Broker
	DarshanLogs []*darshan.Log
	Collector   *Collector

	// Cluster is the sharded Mofka cluster the run published through, set
	// when SessionConfig.ClusterBrokers > 0. Broker then holds the
	// cluster's merged read view (every partition's acknowledged prefix
	// plus max-merged cursors), so every analysis path works unchanged.
	Cluster *mcluster.Cluster

	// Live is the live monitor's final Summary, set when
	// SessionConfig.LiveMonitor was enabled.
	Live *live.Summary

	// CritPath is the whole-run critical-path digest (internal/whatif),
	// computed at the end of every instrumented run: the makespan's
	// attribution to compute, transfer, I/O, scheduler, and proxy time.
	// Nil when collection was disabled.
	CritPath *whatif.Summary

	// Proxy is the final proxy-store counter snapshot (zero when the
	// pass-by-reference plane is disabled): resume-equivalence checks
	// compare residency against an uninterrupted baseline with it.
	Proxy proxystore.Stats

	// Files is the final parallel-filesystem manifest (path → size). A
	// resumed run must leave exactly the manifest an uninterrupted run
	// would — the file-side half of the resume-equivalence check, since
	// the crashed attempt's Darshan logs die with its processes.
	Files map[string]int64

	WallTime sim.Time
}

// Session is one instrumented run's lifecycle, split so callers can hold it:
// NewSession builds every component (kernel, platform, cluster, broker,
// collector, chaos, checkpointer), Execute stages and runs the workflow, and
// Close releases what the session owns. Run/RunOnBroker wrap the three for
// the common case.
type Session struct {
	cfg SessionConfig
	wf  Workflow

	k       *sim.Kernel
	plat    *platform.Cluster
	fsys    *pfs.FileSystem
	px      *posixio.FS
	cluster *dask.Cluster

	broker    *mofka.Broker
	ownBroker bool
	clu       *mcluster.Cluster
	collector *Collector
	runtimes  []*darshan.Runtime

	monitor *live.Monitor
	liveSrv *live.Server

	frontier       *frontierPlugin
	stopCheckpoint func()

	retryBudget  *mercury.RetryBudget
	retryEngaged bool

	attempt     int
	resumedFrom int
	resumeState *resume.State

	crashed bool
	crashAt sim.Time

	closed bool
}

// NewSession validates the configuration and constructs every component of
// the run without starting it. On error the partially-constructed session is
// closed before returning. The optional external broker shares the event
// stream with in-situ consumers; nil creates a private one.
func NewSession(cfg SessionConfig, wf Workflow, broker *mofka.Broker) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if broker != nil && cfg.ClusterBrokers > 0 {
		return nil, fmt.Errorf("core: ClusterBrokers is incompatible with an external broker")
	}
	if broker != nil && cfg.ResumeFrom != "" {
		return nil, fmt.Errorf("core: ResumeFrom is incompatible with an external broker")
	}

	s := &Session{cfg: cfg, wf: wf, attempt: 1}
	if cfg.Speculation.Enabled {
		// The session-level policy is authoritative: project it onto the
		// scheduler's config before the cluster is built.
		s.cfg.Dask.Speculation = cfg.Speculation
	}
	if cfg.ResumeFrom != "" {
		st, err := resume.Reconstruct(cfg.ResumeFrom)
		if err != nil {
			return nil, err
		}
		s.resumeState = st
		s.attempt = st.Attempt
		s.resumedFrom = st.ResumedFrom
		s.cfg.MofkaDataDir = cfg.ResumeFrom
	}
	cfg = s.cfg

	s.k = sim.NewKernel(cfg.Seed)
	if s.resumeState != nil {
		// Fast-forward the virtual clock past every surviving event of the
		// crashed attempts before anything is scheduled, so the merged
		// provenance timeline stays monotonic across the attempt boundary.
		s.k.RunUntil(s.resumeState.ResumeBase)
	}
	s.plat = platform.New(s.k, cfg.Platform)
	s.fsys = pfs.New(s.k, cfg.PFS)
	s.px = posixio.NewFS(s.fsys)

	// Darshan runtime per worker process.
	tracers := dask.TracerFactory(nil)
	if !cfg.DisableCollection {
		tracers = func(rank int, hostname string) posixio.Tracer {
			rt := darshan.NewRuntime(darshan.Config{
				JobID: cfg.JobID, Rank: rank, Hostname: hostname,
				Exe:        wf.Name(),
				DXTEnabled: cfg.DarshanDXT, DXTBufferSegments: cfg.DXTBufferSegments,
				MaxFileRecords: cfg.DarshanMaxFileRecords,
			})
			s.runtimes = append(s.runtimes, rt)
			return rt
		}
	}

	s.cluster = dask.NewCluster(s.k, s.plat, s.px, cfg.Dask, tracers)

	// Speculation closes the detect→act loop: the scheduler's speculation
	// tick consults the live straggler detector (the same MAD robust-z model
	// the monitor's anomaly lane runs) in addition to its built-in quantile
	// policy.
	if cfg.Dask.Speculation.Enabled {
		s.cluster.SetSpeculationAdvisor(live.NewStragglerDetector(cfg.LiveOptions.Aggregator.Anomaly))
	}

	// Sharded, replicated deployment: the provenance stream targets a
	// multi-broker Mofka cluster instead of one broker. Health events are
	// timestamped with virtual time so the failover timeline lines up with
	// the rest of the provenance stream.
	if cfg.ClusterBrokers > 0 {
		ccfg := mcluster.Config{
			Brokers:           cfg.ClusterBrokers,
			ReplicationFactor: cfg.ClusterReplication,
			Quorum:            cfg.ClusterQuorum,
			NowSeconds:        func() float64 { return s.k.Now().Seconds() },
		}
		if cfg.MofkaDataDir != "" {
			if s.resumeState == nil && (mcluster.IsClusterDir(cfg.MofkaDataDir) || mofka.IsDataDir(cfg.MofkaDataDir)) {
				return nil, fmt.Errorf("core: data dir %s already holds an event log (one directory per run; use ResumeFrom to continue it)", cfg.MofkaDataDir)
			}
			pol, err := wal.ParseSyncPolicy(cfg.MofkaSyncPolicy)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			ccfg.DataDir = cfg.MofkaDataDir
			ccfg.WAL = wal.Options{Sync: pol}
		}
		var err error
		s.clu, err = mcluster.New(ccfg)
		if err != nil {
			return nil, err
		}
	}

	if broker == nil && s.clu == nil {
		if cfg.MofkaDataDir != "" {
			// Each run gets a fresh event log: appending a second run to an
			// existing log would silently merge both runs' provenance. A
			// resumed session is the sanctioned exception — it continues the
			// same run, and the durable broker recovers the log appendable.
			if s.resumeState == nil && mofka.IsDataDir(cfg.MofkaDataDir) {
				return nil, fmt.Errorf("core: data dir %s already holds an event log (one directory per run; use ResumeFrom to continue it)", cfg.MofkaDataDir)
			}
			pol, err := wal.ParseSyncPolicy(cfg.MofkaSyncPolicy)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			broker, err = mofka.NewDurableBroker(mofka.Options{
				DataDir: cfg.MofkaDataDir,
				WAL:     wal.Options{Sync: pol},
			})
			if err != nil {
				return nil, err
			}
		} else {
			broker = mofka.NewStandaloneBroker()
		}
		s.ownBroker = true
	}
	s.broker = broker

	if !cfg.DisableCollection {
		var err error
		// Resilience: a broker hiccup degrades the producers (bounded
		// buffering + quick in-line retries) instead of failing the run.
		popts := mofka.ProducerOptions{
			BatchSize:    cfg.MofkaBatchSize,
			FlushRetries: 2,
			RetryBackoff: time.Millisecond,
		}
		if s.clu != nil {
			s.collector, err = NewCollectorBus(s.clu.Bus(), 2, popts)
		} else {
			s.collector, err = NewCollector(broker, popts)
		}
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.collector.SetClock(s.k.Now)
		s.cluster.AddSchedulerPlugin(s.collector.SchedulerPlugin())
		s.cluster.AddWorkerPlugin(s.collector.WorkerPlugin())
	}

	// The frontier checkpointer rides along whenever the run is durable: it
	// observes completions and blob residency and periodically snapshots
	// them next to the event log, bounding a future resume's WAL replay.
	if cfg.MofkaDataDir != "" && !cfg.DisableCollection {
		var seed *resume.Checkpoint
		if s.resumeState != nil {
			seed = s.resumeState.Frontier
		}
		s.frontier = newFrontierPlugin(s.attempt, seed)
		s.cluster.AddSchedulerPlugin(s.frontier)
		s.cluster.AddWorkerPlugin(s.frontier)
	}

	// Arm fault injection before anything starts so kills scheduled at early
	// virtual times land deterministically.
	if cfg.ChaosSpec != "" {
		plan, err := chaos.Parse(cfg.ChaosSpec)
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		ctl := chaos.NewController(plan)
		if err := ctl.ArmWorkerFaults(s.k, s.cluster, len(s.cluster.Workers())); err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := ctl.ArmSlowdowns(s.k, s.cluster, len(s.cluster.Workers())); err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := ctl.ArmLinkFaults(s.k, s.plat, cfg.Platform.Nodes); err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
		if s.clu != nil {
			if err := ctl.ArmClusterFaults(s.k, s.clu); err != nil {
				_ = s.Close()
				return nil, fmt.Errorf("core: %w", err)
			}
			ctl.ArmBroker(s.clu)
		} else {
			if len(plan.Brokers) > 0 {
				_ = s.Close()
				return nil, fmt.Errorf("core: chaos broker directive requires ClusterBrokers > 0")
			}
			ctl.ArmBroker(broker)
		}
		ctl.ArmSchedulerFaults(s.k, s.crash)
		if kills := ctl.TaskTriggeredSchedulerKills(); len(kills) > 0 {
			byKey := make(map[string]chaos.SchedulerKill, len(kills))
			for _, kk := range kills {
				byKey[kk.AtTask] = kk
			}
			s.cluster.AddWorkerPlugin(&taskKillPlugin{kills: byKey, crash: s.crash})
		}
	}

	// Live monitoring: attach the streaming aggregator to the broker before
	// the run starts, so it consumes the provenance topics while the
	// workflow executes. Its final aggregates equal the post-mortem
	// PERFRECUP views (the equivalence invariant, see internal/live).
	if cfg.LiveMonitor && s.clu == nil {
		s.monitor = live.NewMonitor(broker, cfg.LiveOptions)
		slots := cfg.Platform.Nodes * cfg.Dask.WorkersPerNode * cfg.Dask.ThreadsPerWorker
		s.monitor.Aggregator().SetMeta(wf.Name(), cfg.Seed, slots)
		if cfg.LiveHTTPAddr != "" {
			var err error
			s.liveSrv, err = live.Serve(cfg.LiveHTTPAddr, s.monitor)
			if err != nil {
				_ = s.Close()
				return nil, err
			}
		}
	}
	return s, nil
}

// crash is the coordinator-kill hook: the chaos "scheduler" directive calls
// it (possibly more than once — the first kill wins) to model kill -9 of the
// whole session. It freezes the virtual clock and stops the kernel; Execute
// then surfaces a CrashError without flushing producers, so events buffered
// in unflushed batches are lost exactly as a real SIGKILL would lose them.
func (s *Session) crash(chaos.SchedulerKill) {
	if s.crashed {
		return
	}
	s.crashed = true
	s.crashAt = s.k.Now()
	s.k.Stop()
}

// taskKillPlugin fires a coordinator kill when a named task's execution
// record is observed (the chaos "scheduler at-task=KEY" directive).
type taskKillPlugin struct {
	dask.NopWorkerPlugin
	kills map[string]chaos.SchedulerKill
	crash func(chaos.SchedulerKill)
}

func (p *taskKillPlugin) TaskExecuted(e dask.TaskExecution) {
	if kill, ok := p.kills[string(e.Key)]; ok {
		p.crash(kill)
	}
}

// Execute stages and runs the workflow and assembles the run's artifacts.
// A chaos-killed coordinator returns a *CrashError; the broker and data dir
// are left exactly as the crash found them (resume with SessionConfig.
// ResumeFrom). Execute does not close the session — on success the returned
// artifacts keep the broker readable, and Close remains the caller's.
func (s *Session) Execute() (*RunArtifacts, error) {
	cfg, wf, k := s.cfg, s.wf, s.k

	// The attempt lineage is the fencing record between incarnations:
	// appended (uncompleted) before anything runs, completed only at clean
	// end. A crash leaves the open entry behind as evidence. The partial
	// metadata written alongside makes a crashed dir self-describing, so
	// taskprov resume can rebuild this configuration from it.
	if cfg.MofkaDataDir != "" {
		_, err := resume.AppendAttempt(cfg.MofkaDataDir, resume.Attempt{
			Attempt:      s.attempt,
			ResumedFrom:  s.resumedFrom,
			StartSeconds: k.Now().Seconds(),
		})
		if err != nil {
			return nil, err
		}
		meta := s.buildMeta(0, 0)
		p := filepath.Join(cfg.MofkaDataDir, "metadata.json")
		if err := os.WriteFile(p, EncodeMetadata(meta), 0o644); err != nil {
			return nil, fmt.Errorf("core: persist metadata: %w", err)
		}
	}

	env := &Env{Kernel: k, Platform: s.plat, PFS: s.fsys, FS: s.px, Cluster: s.cluster, RNG: k.RNG("workflow")}
	wf.Stage(env)

	if st := s.resumeState; st != nil {
		// Rebuild what the crashed attempts left behind. The PFS is staged
		// fresh, then the completed tasks' recorded file effects are replayed
		// in completion order (last writer wins — creates truncate), so
		// memoized tasks' outputs exist without re-running them. Tasks whose
		// records were lost re-run and redo their I/O themselves.
		for _, fe := range st.FileEffects {
			s.fsys.CreateNow(fe.Path, fe.SizeAfter)
		}
		s.cluster.SeedResume(st.Memos, st.DoneGraphs)
		if s.collector != nil {
			s.collector.pushWarning(dask.Warning{
				Kind:   dask.WarnSessionResumed,
				Worker: "scheduler",
				At:     k.Now(),
				Message: fmt.Sprintf("attempt %d resumed from attempt %d: %d tasks memoized, %d graphs already done",
					s.attempt, s.resumedFrom, len(st.Memos), len(st.DoneGraphs)),
			})
		}
	}

	if s.frontier != nil && cfg.CheckpointInterval >= 0 {
		interval := cfg.CheckpointInterval
		if interval == 0 {
			interval = DefaultCheckpointInterval
		}
		s.stopCheckpoint = k.Every(sim.Time(interval), func() {
			if err := resume.WriteCheckpoint(cfg.MofkaDataDir, s.frontier.snapshot(k.Now())); err != nil && s.collector != nil {
				s.collector.pushWarning(dask.Warning{
					Kind: dask.WarnCheckpointFailed, Worker: "scheduler",
					At: k.Now(), Message: err.Error(),
				})
			}
		})
	}

	s.cluster.Start()
	var start, end sim.Time
	finished := false
	k.Go(func(p *sim.Proc) {
		cl := s.cluster.Client()
		start = p.Now()
		cl.WaitForWorkers(p, len(s.cluster.Workers()))
		wf.Run(p, cl, env)
		end = p.Now()
		finished = true
		k.Stop()
	})
	k.Run()
	if s.stopCheckpoint != nil {
		s.stopCheckpoint()
		s.stopCheckpoint = nil
	}
	if s.crashed {
		// kill -9: no flush, no final checkpoint, no lineage completion.
		// Whatever the producers had batched but not appended is gone.
		return nil, &CrashError{At: s.crashAt, DataDir: cfg.MofkaDataDir, Attempt: s.attempt}
	}
	if !finished {
		return nil, fmt.Errorf("core: workflow %q deadlocked at %v (%d events pending)", wf.Name(), k.Now(), k.Pending())
	}

	if s.resumeState != nil {
		// Blobs revived for the resumed frontier but never demanded by the
		// remaining work are swept now, emitting their frees into the stream,
		// so merged residency drains to the uninterrupted baseline.
		s.cluster.ReleaseResumeOrphans()
	}

	art := &RunArtifacts{Broker: s.broker, Collector: s.collector, Cluster: s.clu, WallTime: end - start}
	if s.collector != nil {
		if err := s.collector.Flush(); err != nil {
			return nil, err
		}
	}
	if s.clu != nil {
		// The cluster-health lane: every replication/failover event (broker
		// dead, leader elected, catch-up, under-replication, rebalance) is
		// recorded on the warnings topic so perfrecup and live render the
		// failover timeline from the provenance stream itself. Drained after
		// the final flush so the append-time events are all present.
		if s.collector != nil {
			for _, ev := range s.clu.Events() {
				s.collector.pushWarning(clusterWarning(ev))
			}
			if err := s.collector.Flush(); err != nil {
				return nil, err
			}
		}
		// All analyses read the merged view: acknowledged prefixes of every
		// partition plus max-merged consumer cursors, materialized as a
		// standalone in-memory broker.
		view, err := s.clu.ReadView()
		if err != nil {
			return nil, fmt.Errorf("core: cluster read view: %w", err)
		}
		art.Broker = view
	}
	for _, rt := range s.runtimes {
		art.DarshanLogs = append(art.DarshanLogs, rt.Snapshot())
	}
	if cfg.LiveMonitor && s.clu != nil {
		// Cluster runs attach the monitor to the merged read view once the
		// acknowledged prefixes are final; the Summary still satisfies the
		// live/post-mortem equivalence invariant.
		s.monitor = live.NewMonitor(art.Broker, cfg.LiveOptions)
		slots := cfg.Platform.Nodes * cfg.Dask.WorkersPerNode * cfg.Dask.ThreadsPerWorker
		s.monitor.Aggregator().SetMeta(wf.Name(), cfg.Seed, slots)
	}
	if s.monitor != nil {
		sum := s.monitor.Finish(art.DarshanLogs, (end - start).Seconds())
		art.Live = &sum
		if s.liveSrv != nil {
			if err := s.liveSrv.Close(); err != nil {
				return nil, err
			}
			s.liveSrv = nil
		}
		s.monitor = nil
	}
	art.Meta = s.buildMeta(start, end)
	art.Proxy = s.cluster.ProxyStats()
	art.Files = make(map[string]int64)
	for _, p := range s.fsys.List("/") {
		art.Files[p] = s.fsys.Lookup(p).Size
	}
	if !cfg.DisableCollection {
		// The critical-path digest rides on every instrumented run; an
		// extraction failure (e.g. a chaos run that lost its stream) just
		// leaves it nil.
		if model, err := whatif.Extract(art.WhatIfInput()); err == nil {
			art.CritPath = model.CriticalPath().Summarize()
		}
	}
	if cfg.MofkaDataDir != "" {
		// Make the data directory self-describing: with metadata.json next
		// to topics/ (or cluster.json), perfrecup can analyze the event log
		// post-mortem without the JSONL run directory.
		if s.clu != nil {
			if err := s.clu.Sync(); err != nil {
				return nil, err
			}
		} else if err := s.broker.Sync(); err != nil {
			return nil, err
		}
		if s.frontier != nil {
			if err := resume.WriteCheckpoint(cfg.MofkaDataDir, s.frontier.snapshot(k.Now())); err != nil {
				return nil, err
			}
		}
		if err := resume.CompleteAttempt(cfg.MofkaDataDir, s.attempt, end.Seconds()); err != nil {
			return nil, err
		}
		p := filepath.Join(cfg.MofkaDataDir, "metadata.json")
		if err := os.WriteFile(p, EncodeMetadata(art.Meta), 0o644); err != nil {
			return nil, fmt.Errorf("core: persist metadata: %w", err)
		}
		if err := art.WriteDarshanLogs(cfg.MofkaDataDir); err != nil {
			return nil, fmt.Errorf("core: persist darshan logs: %w", err)
		}
	}
	return art, nil
}

// buildMeta assembles the run's metadata chart; zero start/end produce the
// partial record written at session start (WallSeconds 0 marks it
// in-progress for post-mortem readers).
func (s *Session) buildMeta(start, end sim.Time) RunMetadata {
	cfg := s.cfg
	dxtBuf := cfg.DXTBufferSegments
	if dxtBuf <= 0 {
		dxtBuf = darshan.DefaultDXTBufferSegments
	}
	m := RunMetadata{
		JobID:    cfg.JobID,
		Workflow: s.wf.Name(),
		Seed:     cfg.Seed,
		Platform: s.plat.Describe(),
		Storage:  s.fsys.Describe(),
		Software: DefaultSoftwareStack(),
		Job: JobConfig{
			Nodes:            cfg.Platform.Nodes,
			WorkersPerNode:   cfg.Dask.WorkersPerNode,
			ThreadsPerWorker: cfg.Dask.ThreadsPerWorker,
			Queue:            "prod",
			Script:           jobScript(cfg, s.wf.Name()),
		},
		DaskConfig: DescribeDaskConfig(s.cluster.Config()),
		Instrumentation: InstrumentationConfig{
			DXTEnabled:         cfg.DarshanDXT,
			DXTBufferSegments:  dxtBuf,
			MofkaBatchSize:     cfg.MofkaBatchSize,
			MofkaDataDir:       cfg.MofkaDataDir,
			ClusterBrokers:     cfg.ClusterBrokers,
			ClusterReplication: cfg.ClusterReplication,
			Chaos:              cfg.ChaosSpec,
		},
		StartSeconds: start.Seconds(),
		EndSeconds:   end.Seconds(),
		WallSeconds:  (end - start).Seconds(),
	}
	if sp := s.cluster.Config().Speculation; sp.Enabled {
		m.Instrumentation.SpeculationEnabled = true
		m.Instrumentation.SpeculationMax = sp.MaxConcurrent
		m.Instrumentation.SpeculationQuantile = sp.Quantile
		m.Instrumentation.SpeculationBudget = sp.Budget
	}
	if n := s.retryBudgetSize(); n > 0 {
		m.Instrumentation.RetryBudget = n
	}
	if s.attempt > 1 {
		m.Attempt = s.attempt
		m.ResumedFrom = s.resumedFrom
	}
	return m
}

// Close releases everything the session owns: the live endpoint and monitor,
// the checkpoint ticker, and — when the session created them — the broker or
// broker cluster (closing a durable broker fsyncs acknowledged events;
// already-published events remain readable, see mofka.Broker.Close). It is
// idempotent, safe on a partially-constructed session, and joins every
// close error.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	if s.liveSrv != nil {
		if err := s.liveSrv.Close(); err != nil {
			errs = append(errs, err)
		}
		s.liveSrv = nil
	}
	if s.monitor != nil {
		s.monitor.Stop()
		s.monitor = nil
	}
	if s.stopCheckpoint != nil {
		s.stopCheckpoint()
		s.stopCheckpoint = nil
	}
	if s.clu != nil {
		if err := s.clu.Close(); err != nil {
			errs = append(errs, err)
		}
		s.clu = nil
	}
	if s.ownBroker && s.broker != nil {
		if err := s.broker.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run executes the workflow under full instrumentation and returns the run's
// artifacts.
func Run(cfg SessionConfig, wf Workflow) (*RunArtifacts, error) {
	return RunOnBroker(cfg, wf, nil)
}

// RunOnBroker is Run with an externally supplied Mofka broker, so in-situ
// consumers (started before the run, possibly in other goroutines or behind
// a TCP endpoint) share the event stream. A nil broker creates a private
// in-memory one.
//
// On error — including a chaos coordinator kill — the session is closed
// (releasing durable WAL handles so a resume can reopen the data dir in the
// same process); on success it is left open so the returned artifacts'
// broker remains fully usable.
func RunOnBroker(cfg SessionConfig, wf Workflow, broker *mofka.Broker) (*RunArtifacts, error) {
	s, err := NewSession(cfg, wf, broker)
	if err != nil {
		return nil, err
	}
	art, err := s.Execute()
	if err != nil {
		if cerr := s.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return art, nil
}

// clusterWarning maps one cluster health event onto the warnings topic: the
// kind is carried verbatim (all "cluster_"-prefixed; see
// perfrecup.ClusterTimelineView and the live cluster-health lane), the
// source broker becomes the worker label, and the virtual timestamp keeps
// the failover timeline aligned with the rest of the provenance stream.
func clusterWarning(ev mcluster.Event) dask.Warning {
	msg := ev.Detail
	if ev.Topic != "" {
		msg = fmt.Sprintf("%s[%d] epoch=%d: %s", ev.Topic, ev.Partition, ev.Epoch, ev.Detail)
	}
	return dask.Warning{
		Kind:    dask.WarningKind(ev.Kind),
		Worker:  fmt.Sprintf("broker-%d", ev.Node),
		At:      sim.Time(ev.At * float64(time.Second)),
		Message: msg,
	}
}

// jobScript synthesizes the submitted job script, part of the job-layer
// provenance ("we collect job-level data, including job scripts and logs").
func jobScript(cfg SessionConfig, workflow string) string {
	return fmt.Sprintf(`#!/bin/bash
#PBS -l select=%d:system=polaris
#PBS -q prod
#PBS -l walltime=01:00:00
mpiexec -n %d --ppn %d dask-worker --nthreads %d ...
python %s.py --seed %d
`, cfg.Platform.Nodes, cfg.Platform.Nodes*cfg.Dask.WorkersPerNode,
		cfg.Dask.WorkersPerNode, cfg.Dask.ThreadsPerWorker, workflow, cfg.Seed)
}

// TotalIOOps counts I/O operations the way the paper's analysis pipeline
// does — from DXT trace segments — so it reproduces Table I's "I/O
// operation" row, including the ResNet152 under-count when DXT buffers
// overflow. TotalPosixOps gives the untruncated counter-based figure.
func (a *RunArtifacts) TotalIOOps() int64 {
	var n int64
	for _, l := range a.DarshanLogs {
		n += l.TotalDXTSegments()
	}
	return n
}

// TotalPosixOps sums reads+writes from the POSIX counter module.
func (a *RunArtifacts) TotalPosixOps() int64 {
	var n int64
	for _, l := range a.DarshanLogs {
		n += l.TotalOps()
	}
	return n
}

// TotalCommunications counts incoming inter-worker transfers — Table I's
// "Communications".
func (a *RunArtifacts) TotalCommunications() (int64, error) {
	metas, err := DrainTopic(a.Broker, TopicTransfers)
	if err != nil {
		return 0, err
	}
	return int64(len(metas)), nil
}

// DistinctFiles counts the distinct file paths across Darshan logs —
// Table I's "Distinct files".
func (a *RunArtifacts) DistinctFiles() int {
	set := map[string]struct{}{}
	for _, l := range a.DarshanLogs {
		for _, r := range l.Records {
			set[r.Path] = struct{}{}
		}
	}
	return len(set)
}

// DistinctTasks counts tasks registered at the scheduler — Table I's
// "Distinct tasks".
func (a *RunArtifacts) DistinctTasks() (int, error) {
	metas, err := DrainTopic(a.Broker, TopicTaskMeta)
	if err != nil {
		return 0, err
	}
	set := map[string]struct{}{}
	for _, m := range metas {
		set[str(m, "key")] = struct{}{}
	}
	return len(set), nil
}

// TaskGraphs counts distinct completed task graphs — Table I's "Task
// graphs". Distinct by graph ID: a resumed run's merged stream can carry a
// graph's done event from more than one attempt.
func (a *RunArtifacts) TaskGraphs() (int, error) {
	metas, err := DrainTopic(a.Broker, TopicGraphs)
	if err != nil {
		return 0, err
	}
	set := map[int]struct{}{}
	for _, m := range metas {
		set[int(num(m, "graph_id"))] = struct{}{}
	}
	return len(set), nil
}
