// Package pfs models a Lustre-like parallel file system: a flat namespace of
// striped files served by a set of object storage targets (OSTs) with shared
// bandwidth, per-operation latency, and optional cross-application
// interference traffic. It is the storage substrate underneath the POSIX
// layer that Darshan instruments.
//
// The model is calibrated loosely on the HPE ClusterStor E1000 systems
// attached to Polaris (the paper's testbed), scaled down to the slice of
// bandwidth a 2-node job actually observes.
package pfs

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"taskprov/internal/sim"
)

// Config describes a file system model.
type Config struct {
	Name        string // mount name recorded in provenance, e.g. "/lus/grand"
	OSTs        int    // object storage targets
	StripeSize  int64  // bytes per stripe unit
	StripeCount int    // OSTs a new file is striped across

	OSTBandwidth float64 // bytes/s per OST as seen by this job

	OpenLatency  sim.Time // metadata server round trip for open/create
	MetaLatency  sim.Time // other metadata ops (stat, unlink)
	ReadLatency  sim.Time // fixed per-read overhead
	WriteLatency sim.Time // fixed per-write overhead
	LatencyCV    float64  // lognormal jitter on all latencies

	// Interference models other jobs sharing the PFS: background work is
	// injected into random OSTs as a Poisson process. InterferenceLoad is
	// the average fraction of each OST's bandwidth consumed (0 disables).
	InterferenceLoad      float64
	InterferenceBurstMean float64 // mean bytes per background burst
}

// Lustre returns a configuration modeled on the paper's Lustre file systems,
// scaled to the share of bandwidth a small job observes.
func Lustre() Config {
	return Config{
		Name:                  "/lus/grand",
		OSTs:                  16,
		StripeSize:            1 << 20,
		StripeCount:           4,
		OSTBandwidth:          2e9,
		OpenLatency:           sim.Microseconds(400),
		MetaLatency:           sim.Microseconds(250),
		ReadLatency:           sim.Microseconds(120),
		WriteLatency:          sim.Microseconds(180),
		LatencyCV:             0.35,
		InterferenceLoad:      0.15,
		InterferenceBurstMean: 64 << 20,
	}
}

// File is one file in the namespace. The model tracks sizes and layout, not
// contents; the POSIX layer synthesizes byte patterns when asked to read.
type File struct {
	Path        string
	Size        int64
	StripeStart int // first OST index of the layout
	StripeCount int
	CreatedAt   sim.Time
	ModifiedAt  sim.Time
}

// FileSystem is an instantiated PFS model bound to a simulation kernel.
type FileSystem struct {
	cfg     Config
	kernel  *sim.Kernel
	osts    []*sim.SharedServer
	files   map[string]*File
	nextOST int
	lat     *sim.RNG
	noise   *sim.RNG

	reads, writes, opens, metas int64
}

// New builds a file system on kernel k. If cfg.InterferenceLoad > 0, a
// background traffic process starts immediately.
func New(k *sim.Kernel, cfg Config) *FileSystem {
	if cfg.OSTs <= 0 {
		panic("pfs: config needs at least one OST")
	}
	if cfg.StripeCount <= 0 || cfg.StripeCount > cfg.OSTs {
		cfg.StripeCount = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 1 << 20
	}
	fs := &FileSystem{
		cfg:    cfg,
		kernel: k,
		files:  make(map[string]*File),
		lat:    k.RNG("pfs/latency"),
		noise:  k.RNG("pfs/noise"),
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, sim.NewSharedServer(k, fmt.Sprintf("%s/ost%d", cfg.Name, i), cfg.OSTBandwidth, 0))
	}
	if cfg.InterferenceLoad > 0 {
		fs.startInterference()
	}
	return fs
}

// Config returns the configuration the file system was built from.
func (fs *FileSystem) Config() Config { return fs.cfg }

// startInterference injects background bursts so that, on average, each OST
// spends InterferenceLoad of its time serving foreign traffic.
func (fs *FileSystem) startInterference() {
	mean := fs.cfg.InterferenceBurstMean
	if mean <= 0 {
		mean = 64 << 20
	}
	// Burst service time at full rate = mean/bw; to hit target load the
	// inter-arrival mean must be serviceTime/load per OST.
	per := (mean / fs.cfg.OSTBandwidth) / fs.cfg.InterferenceLoad
	interMean := per / float64(fs.cfg.OSTs)
	var next func()
	next = func() {
		ost := fs.osts[fs.noise.Intn(len(fs.osts))]
		ost.Submit(fs.noise.Exponential(mean), nil)
		fs.kernel.After(sim.Seconds(fs.noise.Exponential(interMean)), next)
	}
	fs.kernel.After(sim.Seconds(fs.noise.Exponential(interMean)), next)
}

// Normalize cleans a path into the canonical form used as the namespace key.
func Normalize(p string) string {
	p = path.Clean("/" + strings.TrimPrefix(p, "/"))
	return p
}

// Create makes (or truncates) a file and lays it out round-robin over the
// OSTs. It completes after a metadata round trip; done receives the file.
// done must tolerate being called from a kernel event.
func (fs *FileSystem) Create(p string, done func(*File)) {
	fs.opens++
	p = Normalize(p)
	fs.kernel.After(fs.lat.JitterTime(fs.cfg.OpenLatency, fs.cfg.LatencyCV), func() {
		f, ok := fs.files[p]
		if !ok {
			f = &File{
				Path:        p,
				StripeStart: fs.nextOST,
				StripeCount: fs.cfg.StripeCount,
				CreatedAt:   fs.kernel.Now(),
			}
			fs.nextOST = (fs.nextOST + fs.cfg.StripeCount) % fs.cfg.OSTs
			fs.files[p] = f
		}
		f.Size = 0
		f.ModifiedAt = fs.kernel.Now()
		if done != nil {
			done(f)
		}
	})
}

// Open looks up a file; done receives nil if it does not exist.
func (fs *FileSystem) Open(p string, done func(*File)) {
	fs.opens++
	p = Normalize(p)
	fs.kernel.After(fs.lat.JitterTime(fs.cfg.OpenLatency, fs.cfg.LatencyCV), func() {
		if done != nil {
			done(fs.files[p])
		}
	})
}

// Stat resolves file metadata without the cost of a full open.
func (fs *FileSystem) Stat(p string, done func(*File)) {
	fs.metas++
	p = Normalize(p)
	fs.kernel.After(fs.lat.JitterTime(fs.cfg.MetaLatency, fs.cfg.LatencyCV), func() {
		if done != nil {
			done(fs.files[p])
		}
	})
}

// Unlink removes a file from the namespace.
func (fs *FileSystem) Unlink(p string, done func(existed bool)) {
	fs.metas++
	p = Normalize(p)
	fs.kernel.After(fs.lat.JitterTime(fs.cfg.MetaLatency, fs.cfg.LatencyCV), func() {
		_, ok := fs.files[p]
		delete(fs.files, p)
		if done != nil {
			done(ok)
		}
	})
}

// ostsFor returns the OST servers and per-OST byte counts touched by the
// byte range [off, off+size) of file f under its stripe layout.
func (fs *FileSystem) ostsFor(f *File, off, size int64) map[*sim.SharedServer]float64 {
	out := make(map[*sim.SharedServer]float64)
	if size <= 0 {
		return out
	}
	ss := fs.cfg.StripeSize
	for remaining, cur := size, off; remaining > 0; {
		stripe := cur / ss
		ost := fs.osts[(f.StripeStart+int(stripe)%f.StripeCount)%fs.cfg.OSTs]
		inStripe := ss - cur%ss
		n := remaining
		if n > inStripe {
			n = inStripe
		}
		out[ost] += float64(n)
		cur += n
		remaining -= n
	}
	return out
}

// Read models reading size bytes at offset off from f. The read is clamped
// to the file size; done receives the number of bytes actually read once the
// slowest involved OST finishes. Reads past EOF complete with 0 after the
// base latency.
func (fs *FileSystem) Read(f *File, off, size int64, done func(n int64)) {
	fs.reads++
	if off < 0 {
		off = 0
	}
	n := size
	if off >= f.Size {
		n = 0
	} else if off+n > f.Size {
		n = f.Size - off
	}
	lat := fs.lat.JitterTime(fs.cfg.ReadLatency, fs.cfg.LatencyCV)
	fs.kernel.After(lat, func() {
		fs.fanout(f, off, n, func() {
			if done != nil {
				done(n)
			}
		})
	})
}

// Write models writing size bytes at offset off to f, extending it as
// needed. done receives the number of bytes written.
func (fs *FileSystem) Write(f *File, off, size int64, done func(n int64)) {
	fs.writes++
	if off < 0 {
		off = 0
	}
	lat := fs.lat.JitterTime(fs.cfg.WriteLatency, fs.cfg.LatencyCV)
	fs.kernel.After(lat, func() {
		if end := off + size; end > f.Size {
			f.Size = end
		}
		f.ModifiedAt = fs.kernel.Now()
		fs.fanout(f, off, size, func() {
			if done != nil {
				done(size)
			}
		})
	})
}

// fanout charges the byte range to every involved OST and calls done when
// the last one completes.
func (fs *FileSystem) fanout(f *File, off, size int64, done func()) {
	parts := fs.ostsFor(f, off, size)
	if len(parts) == 0 {
		fs.kernel.After(0, done)
		return
	}
	left := len(parts)
	for ost, bytes := range parts {
		ost.Submit(bytes, func() {
			left--
			if left == 0 {
				done()
			}
		})
	}
}

// CreateNow synchronously places a file of the given size in the namespace
// without paying simulated latency. It is the dataset-staging entry point:
// input data exists before the workflow (and its timing) starts.
func (fs *FileSystem) CreateNow(p string, size int64) *File {
	p = Normalize(p)
	f, ok := fs.files[p]
	if !ok {
		f = &File{
			Path:        p,
			StripeStart: fs.nextOST,
			StripeCount: fs.cfg.StripeCount,
			CreatedAt:   fs.kernel.Now(),
		}
		fs.nextOST = (fs.nextOST + fs.cfg.StripeCount) % fs.cfg.OSTs
		fs.files[p] = f
	}
	f.Size = size
	f.ModifiedAt = fs.kernel.Now()
	return f
}

// List returns the paths currently in the namespace matching prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	prefix = Normalize(prefix)
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Lookup returns the file at path p without paying simulated latency; it is
// a synchronous accessor for tests and analysis code, not a modeled op.
func (fs *FileSystem) Lookup(p string) *File { return fs.files[Normalize(p)] }

// Counts reports cumulative operation counts (reads, writes, opens, metas).
func (fs *FileSystem) Counts() (reads, writes, opens, metas int64) {
	return fs.reads, fs.writes, fs.opens, fs.metas
}

// Describe returns the storage metadata for the provenance chart.
func (fs *FileSystem) Describe() Description {
	return Description{
		Mount:        fs.cfg.Name,
		OSTs:         fs.cfg.OSTs,
		StripeSize:   fs.cfg.StripeSize,
		StripeCount:  fs.cfg.StripeCount,
		OSTBandwidth: fs.cfg.OSTBandwidth,
	}
}

// Description is the serializable PFS metadata.
type Description struct {
	Mount        string  `json:"mount"`
	OSTs         int     `json:"osts"`
	StripeSize   int64   `json:"stripe_size"`
	StripeCount  int     `json:"stripe_count"`
	OSTBandwidth float64 `json:"ost_bandwidth"`
}
