package perfrecup

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup/frame"
)

// RenderTableIRow formats one workflow's Table I row from measured
// artifacts.
func RenderTableIRow(art *core.RunArtifacts) (string, error) {
	graphs, err := art.TaskGraphs()
	if err != nil {
		return "", err
	}
	tasks, err := art.DistinctTasks()
	if err != nil {
		return "", err
	}
	comms, err := art.TotalCommunications()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%-16s graphs=%-3d tasks=%-6d files=%-5d io_ops=%-5d comms=%-5d",
		art.Meta.Workflow, graphs, tasks, art.DistinctFiles(), art.TotalIOOps(), comms), nil
}

// IOTimeline renders the Fig. 4 view: per-thread I/O activity over elapsed
// time. Each row is one thread; columns are time bins; 'R'/'W' mark bins
// dominated by reads/writes ('r'/'w' for small accesses, '.' idle). The
// paper encodes size as opacity; here lowercase marks accesses below
// smallCutoff bytes.
func IOTimeline(art *core.RunArtifacts, bins int, smallCutoff int64) (string, error) {
	dxt, err := DXTView(art)
	if err != nil {
		return "", err
	}
	if dxt.NRows() == 0 {
		return "(no I/O recorded)", nil
	}
	endCol := dxt.Col("end")
	maxT := 0.0
	for i := 0; i < dxt.NRows(); i++ {
		if v := endCol.Float(i); v > maxT {
			maxT = v
		}
	}
	if bins <= 0 {
		bins = 100
	}
	width := maxT / float64(bins)
	if width <= 0 {
		width = 1
	}
	type cell struct {
		readBytes, writeBytes int64
		maxLen                int64
	}
	grid := map[int64][]cell{} // tid -> bins
	tidCol := dxt.Col("thread_id")
	opCol := dxt.Col("op")
	lenCol := dxt.Col("length")
	startCol := dxt.Col("start")
	for i := 0; i < dxt.NRows(); i++ {
		tid := tidCol.Int(i)
		if _, ok := grid[tid]; !ok {
			grid[tid] = make([]cell, bins)
		}
		b0 := int(startCol.Float(i) / width)
		b1 := int(endCol.Float(i) / width)
		for b := b0; b <= b1 && b < bins; b++ {
			if b < 0 {
				continue
			}
			c := &grid[tid][b]
			if opCol.Str(i) == "read" {
				c.readBytes += lenCol.Int(i)
			} else {
				c.writeBytes += lenCol.Int(i)
			}
			if lenCol.Int(i) > c.maxLen {
				c.maxLen = lenCol.Int(i)
			}
		}
	}
	tids := make([]int64, 0, len(grid))
	for tid := range grid {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })

	var sb strings.Builder
	fmt.Fprintf(&sb, "per-thread I/O over %.1fs (%d bins of %.2fs; R/W=large, r/w=small <%d B)\n",
		maxT, bins, width, smallCutoff)
	for _, tid := range tids {
		fmt.Fprintf(&sb, "tid %6d |", tid)
		for _, c := range grid[tid] {
			ch := byte('.')
			switch {
			case c.readBytes == 0 && c.writeBytes == 0:
			case c.readBytes >= c.writeBytes && c.maxLen >= smallCutoff:
				ch = 'R'
			case c.readBytes >= c.writeBytes:
				ch = 'r'
			case c.maxLen >= smallCutoff:
				ch = 'W'
			default:
				ch = 'w'
			}
			sb.WriteByte(ch)
		}
		sb.WriteString("|\n")
	}
	return sb.String(), nil
}

// CommBucket summarizes transfers whose size falls in [LoBytes, HiBytes).
// Proxied counts the bucket's pass-by-reference transfers and
// MeanResolveSec averages their demand-to-arrival resolution latency —
// the proxy-resolution view joined into the communication scatter.
type CommBucket struct {
	LoBytes, HiBytes     int64
	Count                int
	MeanSec, MaxSec      float64
	P95Sec               float64
	InterNode, IntraNode int
	Proxied              int
	MeanResolveSec       float64
}

// CommScatter produces the Fig. 5 view: transfer duration versus size,
// split by intra- vs inter-node, summarized into logarithmic size buckets.
func CommScatter(art *core.RunArtifacts) ([]CommBucket, error) {
	tr, err := TransfersView(art)
	if err != nil {
		return nil, err
	}
	if tr.NRows() == 0 {
		return nil, nil
	}
	type acc struct {
		durs         []float64
		resolves     []float64
		inter, intra int
		proxied      int
	}
	buckets := map[int]*acc{}
	bytesCol := tr.Col("bytes")
	durCol := tr.Col("duration")
	sameCol := tr.Col("same_node")
	proxyCol := tr.Col("via_proxy")
	resolveCol := tr.Col("resolve_latency")
	for i := 0; i < tr.NRows(); i++ {
		b := bytesCol.Int(i)
		idx := 0
		if b > 0 {
			idx = int(math.Log2(float64(b)))
		}
		a, ok := buckets[idx]
		if !ok {
			a = &acc{}
			buckets[idx] = a
		}
		a.durs = append(a.durs, durCol.Float(i))
		if sameCol.Bool(i) {
			a.intra++
		} else {
			a.inter++
		}
		if proxyCol.Bool(i) {
			a.proxied++
			a.resolves = append(a.resolves, resolveCol.Float(i))
		}
	}
	var idxs []int
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var out []CommBucket
	for _, i := range idxs {
		a := buckets[i]
		_, max := MinMax(a.durs)
		cb := CommBucket{
			LoBytes: 1 << i, HiBytes: 1 << (i + 1),
			Count: len(a.durs), MeanSec: Mean(a.durs), MaxSec: max,
			P95Sec: Percentile(a.durs, 95), InterNode: a.inter, IntraNode: a.intra,
			Proxied: a.proxied,
		}
		if a.proxied > 0 {
			cb.MeanResolveSec = Mean(a.resolves)
		}
		out = append(out, cb)
	}
	return out, nil
}

// RenderCommScatter formats the Fig. 5 buckets.
func RenderCommScatter(buckets []CommBucket) string {
	var sb strings.Builder
	sb.WriteString("size-bucket            n     mean(s)   p95(s)    max(s)   inter/intra  proxied  resolve(s)\n")
	for _, b := range buckets {
		fmt.Fprintf(&sb, "[%9d,%9d) %-5d %-9.5f %-9.5f %-8.5f %-12s %-8d %.5f\n",
			b.LoBytes, b.HiBytes, b.Count, b.MeanSec, b.P95Sec, b.MaxSec,
			fmt.Sprintf("%d/%d", b.InterNode, b.IntraNode), b.Proxied, b.MeanResolveSec)
	}
	return sb.String()
}

// ParallelCoords produces the Fig. 6 view: one row per task with the five
// coordinates the paper plots — elapsed time (start), task category
// (prefix), executing thread, output size (MB), duration (s) — sorted by
// duration descending.
func ParallelCoords(art *core.RunArtifacts) (*frame.Frame, error) {
	execs, err := ExecutionsView(art)
	if err != nil {
		return nil, err
	}
	n := execs.NRows()
	sizeMB := make([]float64, n)
	sizeCol := execs.Col("output_size")
	for i := 0; i < n; i++ {
		sizeMB[i] = float64(sizeCol.Int(i)) / (1 << 20)
	}
	out := execs.Select("start", "prefix", "thread_id", "duration", "key").
		WithColumn(frame.Floats("output_mb", sizeMB...))
	return out.SortBy("duration", true), nil
}

// RenderParallelCoords formats the top rows of the Fig. 6 view plus a
// per-category summary.
func RenderParallelCoords(f *frame.Frame, top int) string {
	var sb strings.Builder
	sb.WriteString("elapsed(s)  category                      thread   out(MB)   duration(s)\n")
	h := f.Head(top)
	for i := 0; i < h.NRows(); i++ {
		fmt.Fprintf(&sb, "%-11.2f %-29s %-8d %-9.1f %.3f\n",
			h.Col("start").Float(i), h.Col("prefix").Str(i),
			h.Col("thread_id").Int(i), h.Col("output_mb").Float(i),
			h.Col("duration").Float(i))
	}
	sb.WriteString("\nper-category durations:\n")
	agg := f.GroupBy("prefix").Agg(
		frame.Agg{Col: "duration", Fn: frame.Mean},
		frame.Agg{Col: "duration", Fn: frame.Max},
		frame.Agg{Col: "duration", Fn: frame.Count, As: "n"},
		frame.Agg{Col: "output_mb", Fn: frame.Mean},
	).SortBy("duration_max", true)
	for i := 0; i < agg.NRows(); i++ {
		fmt.Fprintf(&sb, "%-29s n=%-6d mean=%-8.3fs max=%-8.3fs out=%.1fMB\n",
			agg.Col("prefix").Str(i), agg.Col("n").Int(i),
			agg.Col("duration_mean").Float(i), agg.Col("duration_max").Float(i),
			agg.Col("output_mb_mean").Float(i))
	}
	return sb.String()
}

// WarningHistogram produces the Fig. 7 view: warning counts per time bin,
// per warning kind.
func WarningHistogram(art *core.RunArtifacts, binSeconds float64) (map[string]Histogram, error) {
	wv, err := WarningsView(art)
	if err != nil {
		return nil, err
	}
	end := art.Meta.WallSeconds
	if end <= 0 {
		end = 1
	}
	nbins := int(math.Ceil(end / binSeconds))
	if nbins < 1 {
		nbins = 1
	}
	byKind := map[string][]float64{}
	kindCol := wv.Col("kind")
	atCol := wv.Col("at")
	for i := 0; i < wv.NRows(); i++ {
		k := kindCol.Str(i)
		byKind[k] = append(byKind[k], atCol.Float(i))
	}
	out := map[string]Histogram{}
	for k, at := range byKind {
		out[k] = NewHistogram(at, 0, float64(nbins)*binSeconds, nbins)
	}
	return out, nil
}

// RenderWarningHistogram formats the Fig. 7 histograms.
func RenderWarningHistogram(h map[string]Histogram, binSeconds float64) string {
	var kinds []string
	for k := range h {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var sb strings.Builder
	for _, k := range kinds {
		hist := h[k]
		fmt.Fprintf(&sb, "%s (total %d):\n", k, hist.Total())
		for i, c := range hist.Counts {
			if c == 0 {
				continue
			}
			bar := strings.Repeat("#", minInt(c, 60))
			fmt.Fprintf(&sb, "  [%6.0fs-%6.0fs) %4d %s\n",
				float64(i)*binSeconds, float64(i+1)*binSeconds, c, bar)
		}
	}
	return sb.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RenderPhaseStats formats the Fig. 3 series: normalized phase means with
// error bars for a set of workflows.
func RenderPhaseStats(stats []PhaseStats) string {
	var sb strings.Builder
	sb.WriteString("workflow         runs  phase    norm-mean  norm-std   raw-mean(s)  raw-std(s)\n")
	for _, s := range stats {
		rows := []struct {
			name   string
			nm, ns float64
			rm, rs float64
		}{
			{"io", s.NormIO, s.NormIOStd, s.MeanIO, s.StdIO},
			{"comm", s.NormComm, s.NormCommStd, s.MeanComm, s.StdComm},
			{"compute", s.NormCompute, s.NormComputeStd, s.MeanCompute, s.StdCompute},
			{"total", s.NormTotal, s.NormTotalStd, s.MeanTotal, s.StdTotal},
		}
		for _, r := range rows {
			fmt.Fprintf(&sb, "%-16s %-5d %-8s %-10.4f %-10.4f %-12.2f %-10.2f\n",
				s.Workflow, s.Runs, r.name, r.nm, r.ns, r.rm, r.rs)
		}
	}
	return sb.String()
}
