package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"taskprov/internal/mofka"
)

// ClusterTopic is a handle on a cluster-wide topic — the counterpart of
// *mofka.Topic for sharded deployments. It satisfies mofka.BusTopic.
type ClusterTopic struct {
	c     *Cluster
	name  string
	parts int
}

// Name returns the topic name.
func (t *ClusterTopic) Name() string { return t.name }

// PartitionCount returns the topic's partition count.
func (t *ClusterTopic) PartitionCount() int { return t.parts }

// Producer creates a replicated producer; see NewProducer.
func (t *ClusterTopic) Producer(opts mofka.ProducerOptions) mofka.Pusher {
	return t.NewProducer(opts)
}

// producerSeq is the global producer-id source; ids only need to be unique
// within a process, and a plain counter keeps them deterministic.
var producerSeq atomic.Uint64

// Producer pushes events into a cluster topic with the same batching,
// degraded-mode buffering, and statistics as the single-broker
// mofka.Producer — plus quorum replication with sequence-numbered
// idempotent retry underneath. A batch that fails (no quorum, leader crash
// mid-replication) stays queued and is retried with the same sequence
// number; replicas that already hold it acknowledge without re-appending,
// so a retry across a leader change neither loses nor duplicates events.
// Safe for concurrent use.
type Producer struct {
	c     *Cluster
	topic string
	id    string
	opts  mofka.ProducerOptions
	valid mofka.Validator

	mu       sync.Mutex
	open     []pendingBatch
	queues   [][]sealedBatch
	nextSeq  []uint64 // per-partition, next sequence number to assign
	epochs   []uint64 // per-partition cached fencing epoch (0 = unknown)
	rr       int
	closed   bool
	degraded bool
	pushed   uint64
	flushes  uint64
	dropped  uint64

	// shipMu serializes shipping so a partition's batches land in seal
	// (and therefore sequence) order even under concurrent pushers.
	shipMu sync.Mutex

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

type pendingBatch struct {
	metas [][]byte
	datas [][]byte
	bytes int64
}

type sealedBatch struct {
	pendingBatch
	seq uint64
}

// NewProducer creates a replicated producer for the topic.
func (t *ClusterTopic) NewProducer(opts mofka.ProducerOptions) *Producer {
	setProducerDefaults(&opts)
	t.c.mu.Lock()
	var valid mofka.Validator
	if ts, ok := t.c.topics[t.name]; ok {
		valid = ts.cfg.Validator
	}
	t.c.mu.Unlock()
	p := &Producer{
		c:       t.c,
		topic:   t.name,
		id:      fmt.Sprintf("producer-%d", producerSeq.Add(1)),
		opts:    opts,
		valid:   valid,
		open:    make([]pendingBatch, t.parts),
		queues:  make([][]sealedBatch, t.parts),
		nextSeq: make([]uint64, t.parts),
		epochs:  make([]uint64, t.parts),
	}
	for i := range p.nextSeq {
		p.nextSeq[i] = 1
	}
	if opts.FlushInterval > 0 {
		p.stopFlusher = make(chan struct{})
		p.flusherDone = make(chan struct{})
		go p.flushLoop()
	}
	return p
}

// setProducerDefaults mirrors mofka.ProducerOptions defaults (the setter is
// unexported there).
func setProducerDefaults(o *mofka.ProducerOptions) {
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 4 << 20
	}
	if o.FlushRetries <= 0 {
		o.FlushRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.MaxPendingBatches <= 0 {
		o.MaxPendingBatches = 64
	}
}

func (p *Producer) flushLoop() {
	defer close(p.flusherDone)
	tick := time.NewTicker(p.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = p.Flush() // periodic flush retries next tick
		case <-p.stopFlusher:
			return
		}
	}
}

// Push enqueues one event; see mofka.Producer.Push.
func (p *Producer) Push(metadata mofka.Metadata, data []byte) error {
	return p.PushRaw(metadata.Encode(), data)
}

// PushRaw enqueues one event with pre-encoded JSON metadata.
func (p *Producer) PushRaw(metadata, data []byte) error {
	if p.valid != nil {
		if err := p.valid(metadata); err != nil {
			return fmt.Errorf("%w: %v", mofka.ErrInvalidEvent, err)
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return mofka.ErrClosed
	}
	var idx int
	if p.opts.Partitioner != nil {
		idx = p.opts.Partitioner(metadata, len(p.open))
		if idx < 0 || idx >= len(p.open) {
			p.mu.Unlock()
			return fmt.Errorf("%w: partitioner chose %d of %d", mofka.ErrNoPartition, idx, len(p.open))
		}
	} else {
		idx = p.rr
		p.rr = (p.rr + 1) % len(p.open)
	}
	b := &p.open[idx]
	b.metas = append(b.metas, append([]byte(nil), metadata...))
	b.datas = append(b.datas, append([]byte(nil), data...))
	b.bytes += int64(len(data))
	p.pushed++
	needFlush := len(b.metas) >= p.opts.BatchSize || b.bytes >= p.opts.MaxBatchBytes
	if needFlush {
		p.sealLocked(idx)
	}
	p.mu.Unlock()
	if needFlush {
		return p.ship()
	}
	return nil
}

// sealLocked moves partition idx's open batch onto its shipping queue,
// assigning the batch its per-partition sequence number. Callers hold p.mu.
func (p *Producer) sealLocked(idx int) {
	if len(p.open[idx].metas) == 0 {
		return
	}
	p.queues[idx] = append(p.queues[idx], sealedBatch{p.open[idx], p.nextSeq[idx]})
	p.nextSeq[idx]++
	p.open[idx] = pendingBatch{}
	p.flushes++
}

// ship drains every partition's sealed-batch queue through the replicated
// append path, retrying failures with backoff and refreshing fenced routes.
func (p *Producer) ship() error {
	p.shipMu.Lock()
	var firstErr error
	for idx := range p.queues {
		if err := p.drainPartition(idx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.mu.Lock()
	backlog := 0
	for i := range p.queues {
		backlog += len(p.queues[i])
	}
	notifyDegraded := firstErr != nil && !p.degraded
	notifyRecovered := firstErr == nil && backlog == 0 && p.degraded
	if notifyDegraded {
		p.degraded = true
	}
	if notifyRecovered {
		p.degraded = false
	}
	p.mu.Unlock()
	p.shipMu.Unlock()
	if notifyDegraded && p.opts.OnDegraded != nil {
		p.opts.OnDegraded(firstErr)
	}
	if notifyRecovered && p.opts.OnRecovered != nil {
		p.opts.OnRecovered()
	}
	return firstErr
}

func (p *Producer) drainPartition(idx int) error {
	for {
		p.mu.Lock()
		if len(p.queues[idx]) == 0 {
			p.mu.Unlock()
			return nil
		}
		b := p.queues[idx][0]
		p.mu.Unlock()
		if err := p.appendWithRetry(idx, b); err != nil {
			p.enforceBound(idx)
			return err
		}
		p.mu.Lock()
		p.queues[idx] = p.queues[idx][1:]
		p.mu.Unlock()
	}
}

// appendWithRetry replicates one batch, handling the two retryable
// outcomes differently: ErrFenced means the route is stale — refresh the
// cached epoch (the current one rides on the error return) and retry
// immediately, without consuming a retry attempt or backing off; any other
// failure (no quorum, leader append error) backs off and retries up to
// FlushRetries times with the same sequence number.
func (p *Producer) appendWithRetry(idx int, b sealedBatch) error {
	backoff := p.opts.RetryBackoff
	var err error
	for attempt := 0; ; {
		p.mu.Lock()
		epoch := p.epochs[idx]
		p.mu.Unlock()
		var cur uint64
		cur, err = p.c.Append(p.topic, idx, p.id, b.seq, epoch, b.metas, b.datas)
		p.mu.Lock()
		p.epochs[idx] = cur
		p.mu.Unlock()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrFenced) {
			// Stale route, not a real failure: retry with the fresh epoch.
			continue
		}
		if attempt >= p.opts.FlushRetries {
			return err
		}
		attempt++
		time.Sleep(backoff)
		backoff *= 2
	}
}

// enforceBound drops partition idx's oldest queued batches past
// MaxPendingBatches, counting the dropped events.
func (p *Producer) enforceBound(idx int) {
	p.mu.Lock()
	over := len(p.queues[idx]) - p.opts.MaxPendingBatches
	for i := 0; i < over; i++ {
		p.dropped += uint64(len(p.queues[idx][i].metas))
	}
	if over > 0 {
		p.queues[idx] = append([]sealedBatch(nil), p.queues[idx][over:]...)
	}
	p.mu.Unlock()
}

// Flush seals and ships every pending batch; failed batches stay queued.
func (p *Producer) Flush() error {
	p.mu.Lock()
	for i := range p.open {
		p.sealLocked(i)
	}
	p.mu.Unlock()
	return p.ship()
}

// Close flushes pending events and stops the background flusher.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	if p.stopFlusher != nil {
		close(p.stopFlusher)
		<-p.flusherDone
	}
	return p.Flush()
}

// Degraded reports whether the producer is buffering because replicated
// appends fail (leader down, quorum unreachable).
func (p *Producer) Degraded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// Backlog reports sealed batches still awaiting quorum acknowledgement.
func (p *Producer) Backlog() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.queues {
		n += len(p.queues[i])
	}
	return n
}

// Stats reports events pushed and batches sealed.
func (p *Producer) Stats() (pushed, flushes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pushed, p.flushes
}

// Dropped reports events discarded under degraded-mode backlog pressure.
func (p *Producer) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Bus adapts the cluster to the mofka.Bus interface, so internal/core can
// collect provenance into a cluster exactly as it does into a single
// broker.
func (c *Cluster) Bus() mofka.Bus { return clusterBus{c} }

type clusterBus struct{ c *Cluster }

func (cb clusterBus) EnsureTopic(cfg mofka.TopicConfig) (mofka.BusTopic, error) {
	return cb.c.EnsureTopic(cfg)
}
