package sim

import (
	"math"
	"testing"
)

func almostEqual(a, b Time, tol Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSharedServerSingleJobFullRate(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "ost0", 100, 0) // 100 units/s
	var doneAt Time
	s.Submit(50, func() { doneAt = k.Now() })
	k.Run()
	if !almostEqual(doneAt, Milliseconds(500), Microsecond) {
		t.Fatalf("single job finished at %v, want 0.5s", doneAt)
	}
}

func TestSharedServerEqualSharing(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "nic", 100, 0)
	var d1, d2 Time
	s.Submit(50, func() { d1 = k.Now() })
	s.Submit(50, func() { d2 = k.Now() })
	k.Run()
	// Two equal jobs sharing 100 units/s each see 50 units/s: both take 1s.
	if !almostEqual(d1, Second, Microsecond) || !almostEqual(d2, Second, Microsecond) {
		t.Fatalf("equal jobs finished at %v, %v; want 1s each", d1, d2)
	}
}

func TestSharedServerLateArrivalSlowsDown(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "nic", 100, 0)
	var d1, d2 Time
	s.Submit(100, func() { d1 = k.Now() }) // alone: would finish at 1s
	k.After(Milliseconds(500), func() {
		s.Submit(100, func() { d2 = k.Now() })
	})
	k.Run()
	// Job 1: 0.5s at 100/s (50 served) then shares at 50/s (1s more) = 1.5s.
	if !almostEqual(d1, Milliseconds(1500), Microsecond) {
		t.Fatalf("job1 finished at %v, want 1.5s", d1)
	}
	// Job 2: 50/s until job1 exits at 1.5s (50 served), then 100/s for the
	// remaining 50 => finishes at 2.0s.
	if !almostEqual(d2, Seconds(2), Microsecond) {
		t.Fatalf("job2 finished at %v, want 2.0s", d2)
	}
}

func TestSharedServerPerJobCap(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "nic", 100, 25) // lone job capped to 25/s
	var doneAt Time
	s.Submit(50, func() { doneAt = k.Now() })
	k.Run()
	if !almostEqual(doneAt, Seconds(2), Microsecond) {
		t.Fatalf("capped job finished at %v, want 2s", doneAt)
	}
}

func TestSharedServerZeroWorkCompletesImmediately(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "nic", 100, 0)
	done := false
	s.Submit(0, func() { done = true })
	if done {
		t.Fatal("zero-work callback ran inline")
	}
	k.Run()
	if !done || k.Now() != 0 {
		t.Fatalf("zero-work job: done=%v now=%v", done, k.Now())
	}
}

func TestSharedServerCallbackMaySubmit(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "nic", 100, 0)
	var second Time
	s.Submit(100, func() {
		s.Submit(100, func() { second = k.Now() })
	})
	k.Run()
	if !almostEqual(second, Seconds(2), Microsecond) {
		t.Fatalf("chained job finished at %v, want 2s", second)
	}
}

func TestSharedServerUtilizationAccounting(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "ost", 100, 0)
	s.Submit(30, nil)
	s.Submit(70, nil)
	k.Run()
	if math.Abs(s.UnitsServed()-100) > 1e-6 {
		t.Fatalf("UnitsServed = %v, want 100", s.UnitsServed())
	}
	if s.Active() != 0 {
		t.Fatalf("Active = %d after drain", s.Active())
	}
}

func TestSharedServerManyJobsConservation(t *testing.T) {
	// Property-style: any mix of job sizes and arrival times must conserve
	// total work and never finish a job faster than capacity allows.
	k := NewKernel(99)
	g := NewRNG(5)
	s := NewSharedServer(k, "ost", 1000, 0)
	type rec struct {
		size     float64
		arrive   Time
		finished Time
	}
	var recs []*rec
	var total float64
	for i := 0; i < 50; i++ {
		r := &rec{size: g.Uniform(1, 500), arrive: Time(g.Intn(1000)) * Millisecond}
		total += r.size
		recs = append(recs, r)
		k.At(r.arrive, func() {
			s.Submit(r.size, func() { r.finished = k.Now() })
		})
	}
	k.Run()
	for _, r := range recs {
		if r.finished == 0 && r.arrive != 0 {
			t.Fatalf("job never finished: %+v", r)
		}
		minDur := Seconds(r.size / 1000)
		if r.finished-r.arrive < minDur-Microsecond {
			t.Fatalf("job finished faster than capacity: %+v (min %v)", r, minDur)
		}
	}
	if math.Abs(s.UnitsServed()-total) > 1e-3 {
		t.Fatalf("UnitsServed = %v, want %v", s.UnitsServed(), total)
	}
}

func TestSharedServerInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewSharedServer(NewKernel(1), "bad", 0, 0)
}

func TestSharedServerNoZeroDelaySpinOnResidue(t *testing.T) {
	// Regression: jittered byte counts leave sub-nanosecond residues of
	// work; the server must not spin on zero-delay completion events.
	k := NewKernel(3)
	g := NewRNG(17)
	s := NewSharedServer(k, "nic", 8e10, 0) // high rate: large per-ns quanta
	done := 0
	const jobs = 2000
	for i := 0; i < jobs; i++ {
		arrive := Time(g.Intn(1_000_000)) * Microsecond
		size := g.LogNormalMean(1024, 0.15) // adversarial fractional sizes
		k.At(arrive, func() {
			s.Submit(size, func() { done++ })
		})
	}
	end := k.Run()
	if done != jobs {
		t.Fatalf("completed %d/%d jobs", done, jobs)
	}
	// The kernel must terminate in bounded steps (not millions of spins).
	if k.Steps() > uint64(jobs*20) {
		t.Fatalf("kernel took %d steps for %d jobs: zero-delay spin", k.Steps(), jobs)
	}
	if end <= 0 {
		t.Fatal("no time passed")
	}
}

// TestSharedServerSameInstantCompletionOrder: jobs finishing at the same
// instant must run their callbacks in submission order. The server once
// tracked jobs in a map, which made this ordering depend on allocator
// addresses and leaked nondeterminism into every simulation above it.
func TestSharedServerSameInstantCompletionOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		k := NewKernel(1)
		s := NewSharedServer(k, "nic", 100, 0)
		var order []int
		k.After(0, func() {
			for i := 0; i < 8; i++ {
				i := i
				s.Submit(50, func() { order = append(order, i) })
			}
		})
		k.Run()
		if len(order) != 8 {
			t.Fatalf("trial %d: %d completions, want 8", trial, len(order))
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: completion order %v, want submission order", trial, order)
			}
		}
	}
}
