package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream with the distribution helpers the
// platform and workload models need. Streams are split by name so that adding
// randomness to one component does not perturb the draws seen by another
// (essential for run-to-run comparability when ablating features).
type RNG struct {
	seed uint64
	r    *rand.Rand
}

// NewRNG returns a root stream for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(int64(splitmix64(seed))))}
}

// Split derives an independent child stream identified by name. The child
// depends only on the parent's seed and the name, not on how many values the
// parent has produced.
func (g *RNG) Split(name string) *RNG {
	h := g.seed
	for _, c := range []byte(name) {
		h = splitmix64(h ^ uint64(c))
	}
	return NewRNG(h)
}

// splitmix64 is the SplitMix64 mixing function, used to derive well-spread
// seeds from correlated inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 { return mean + stddev*g.r.NormFloat64() }

// LogNormal returns exp(N(mu, sigma)). Used for heavy-tailed latency noise:
// I/O and network interference on shared HPC systems is classically
// lognormal-ish.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalMean returns a lognormal draw scaled so its mean is mean and its
// coefficient of variation is cv. A cv of zero returns mean exactly.
func (g *RNG) LogNormalMean(mean, cv float64) float64 {
	if mean <= 0 || cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return g.LogNormal(mu, math.Sqrt(sigma2))
}

// Exponential returns an exponential draw with the given mean.
func (g *RNG) Exponential(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Pareto returns a bounded Pareto draw with shape alpha and minimum xmin.
// Used for occasional long-tail stragglers.
func (g *RNG) Pareto(xmin, alpha float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xmin / math.Pow(1-u, 1/alpha)
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
func (g *RNG) IntBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// JitterTime scales d by a lognormal factor with coefficient of variation cv.
func (g *RNG) JitterTime(d Time, cv float64) Time {
	if d <= 0 || cv <= 0 {
		return d
	}
	return Time(g.LogNormalMean(float64(d), cv))
}
