package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"taskprov/internal/mochi/mercury"
	"taskprov/internal/sim"
)

func TestParseKill(t *testing.T) {
	p, err := Parse("kill worker=3 at=2m restart=1m")
	if err != nil {
		t.Fatal(err)
	}
	want := Kill{Worker: 3, At: 2 * time.Minute, Restart: time.Minute}
	if len(p.Kills) != 1 || p.Kills[0] != want {
		t.Fatalf("got %+v", p.Kills)
	}
}

func TestParseMultiStatement(t *testing.T) {
	p, err := Parse("kill worker=0 at=10s; rpc rpc=mofka.append op=error after=5 count=2; wal topic=warnings partition=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 1 || len(p.RPCs) != 1 || len(p.WALs) != 1 {
		t.Fatalf("got %+v", p)
	}
	if f := p.RPCs[0]; f.RPC != "mofka.append" || f.Op != OpError || f.After != 5 || f.Count != 2 {
		t.Fatalf("rpc fault %+v", f)
	}
	if f := p.WALs[0]; f.Topic != "warnings" || f.Partition != 1 || f.Count != 1 {
		t.Fatalf("wal fault %+v", f)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", " ; ; "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if !p.Empty() {
			t.Fatalf("%q: expected empty plan", spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom worker=1 at=2s",         // unknown directive
		"kill at=2s",                  // missing worker
		"kill worker=1",               // missing at
		"kill worker=1 at=2s bogus=x", // unknown field
		"kill worker=1 at=2s at=3s",   // duplicate field
		"kill worker=one at=2s",       // malformed int
		"kill worker=1 at=fast",       // malformed duration
		"kill worker",                 // not key=value
		"rpc op=explode",              // unknown op
		"rpc op=delay",                // delay op without delay
		"rpc op=drop count=0",         // non-positive count
		"wal count=-1",                // non-positive count
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseRoundTripSpec(t *testing.T) {
	p, err := Parse("  kill worker=1 at=5s ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec != "kill worker=1 at=5s" {
		t.Fatalf("spec %q", p.Spec)
	}
}

type fakeCluster struct {
	kills    []int
	restarts []int
}

func (f *fakeCluster) KillWorker(rank int)    { f.kills = append(f.kills, rank) }
func (f *fakeCluster) RestartWorker(rank int) { f.restarts = append(f.restarts, rank) }

func TestArmWorkerFaults(t *testing.T) {
	p, err := Parse("kill worker=2 at=5s restart=3s; kill worker=0 at=1s")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	cl := &fakeCluster{}
	if err := NewController(p).ArmWorkerFaults(k, cl, 4); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(cl.kills) != 2 || cl.kills[0] != 0 || cl.kills[1] != 2 {
		t.Fatalf("kills %v", cl.kills)
	}
	if len(cl.restarts) != 1 || cl.restarts[0] != 2 {
		t.Fatalf("restarts %v", cl.restarts)
	}
}

func TestArmWorkerFaultsValidatesRank(t *testing.T) {
	p, _ := Parse("kill worker=8 at=5s")
	if err := NewController(p).ArmWorkerFaults(sim.NewKernel(1), &fakeCluster{}, 8); err == nil {
		t.Fatal("expected rank-out-of-range error")
	}
}

func TestArmRegistryCountBased(t *testing.T) {
	p, err := Parse("rpc rpc=echo op=error after=1 count=2")
	if err != nil {
		t.Fatal(err)
	}
	reg := mercury.NewRegistry()
	ep := reg.Listen("svc")
	ep.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	ep.Register("other", func(req []byte) ([]byte, error) { return req, nil })
	NewController(p).ArmRegistry(reg)

	call := func(rpc string) error {
		_, err := reg.Call("svc", rpc, nil)
		return err
	}
	// Call 1 passes (after=1), calls 2 and 3 fault (count=2), call 4 passes.
	results := []error{call("echo"), call("echo"), call("echo"), call("echo")}
	for i, wantErr := range []bool{false, true, true, false} {
		if (results[i] != nil) != wantErr {
			t.Fatalf("call %d: err=%v want error=%v", i+1, results[i], wantErr)
		}
	}
	var re *mercury.RemoteError
	if !errors.As(results[1], &re) {
		t.Fatalf("injected error should be a RemoteError, got %T", results[1])
	}
	// Non-matching RPC name is never faulted.
	if err := call("other"); err != nil {
		t.Fatalf("other rpc faulted: %v", err)
	}
}

func TestArmRegistryDrop(t *testing.T) {
	p, _ := Parse("rpc op=drop")
	reg := mercury.NewRegistry()
	reg.Listen("svc").Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	NewController(p).ArmRegistry(reg)
	_, err := reg.Call("svc", "echo", nil)
	if !errors.Is(err, mercury.ErrTimeout) {
		t.Fatalf("drop should surface as ErrTimeout, got %v", err)
	}
	if _, err := reg.Call("svc", "echo", nil); err != nil {
		t.Fatalf("count=1 exhausted, call should pass: %v", err)
	}
}

type fakeBroker struct{ hook func(string, int) error }

func (f *fakeBroker) SetAppendFault(fn func(string, int) error) { f.hook = fn }

func TestArmBroker(t *testing.T) {
	p, err := Parse("wal topic=warnings partition=0 after=1 count=1")
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBroker{}
	NewController(p).ArmBroker(b)
	if b.hook == nil {
		t.Fatal("hook not installed")
	}
	if err := b.hook("warnings", 1); err != nil {
		t.Fatalf("partition mismatch should pass: %v", err)
	}
	if err := b.hook("warnings", 0); err != nil {
		t.Fatalf("after=1 first matching call should pass: %v", err)
	}
	if err := b.hook("warnings", 0); err == nil {
		t.Fatal("second matching call should fault")
	}
	if err := b.hook("warnings", 0); err != nil {
		t.Fatalf("count exhausted, should pass: %v", err)
	}
	if err := b.hook("executions", 0); err != nil {
		t.Fatalf("topic mismatch should pass: %v", err)
	}
}

func TestEmptyPlanArmsNothing(t *testing.T) {
	c := NewController(nil)
	reg := mercury.NewRegistry()
	c.ArmRegistry(reg)
	b := &fakeBroker{}
	c.ArmBroker(b)
	if b.hook != nil {
		t.Fatal("empty plan should not install a broker hook")
	}
}

func TestParseSchedulerKill(t *testing.T) {
	p, err := Parse("scheduler at=90s; scheduler at-task=readzarr-a1b2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schedulers) != 2 {
		t.Fatalf("got %+v", p.Schedulers)
	}
	if sk := p.Schedulers[0]; sk.At != 90*time.Second || sk.AtTask != "" {
		t.Fatalf("time-triggered kill %+v", sk)
	}
	if sk := p.Schedulers[1]; sk.At != 0 || sk.AtTask != "readzarr-a1b2" {
		t.Fatalf("task-triggered kill %+v", sk)
	}
}

func TestParseSchedulerKillErrors(t *testing.T) {
	for _, spec := range []string{
		"scheduler",                  // neither trigger
		"scheduler at=5s at-task=k1", // both triggers
		"scheduler at=0s",            // non-positive time
		"scheduler at=fast",          // malformed duration
		"scheduler at=5s worker=1",   // unknown field
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestArmSchedulerFaults(t *testing.T) {
	p, err := Parse("scheduler at=5s; scheduler at=9s; scheduler at-task=k1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(p)
	k := sim.NewKernel(1)
	var fired []SchedulerKill
	c.ArmSchedulerFaults(k, func(sk SchedulerKill) { fired = append(fired, sk) })
	k.Run()
	// Both time-triggered kills fire (crash must be idempotent); the
	// task-triggered one is left to the session's execution stream.
	if len(fired) != 2 || fired[0].At != 5*time.Second || fired[1].At != 9*time.Second {
		t.Fatalf("fired %+v", fired)
	}
	if tt := c.TaskTriggeredSchedulerKills(); len(tt) != 1 || tt[0].AtTask != "k1" {
		t.Fatalf("task-triggered %+v", tt)
	}
}

func TestArmSchedulerFaultsSkipsPastKills(t *testing.T) {
	p, err := Parse("scheduler at=5s")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	k.RunUntil(10 * sim.Seconds(1))
	var fired []SchedulerKill
	NewController(p).ArmSchedulerFaults(k, func(sk SchedulerKill) { fired = append(fired, sk) })
	k.Run()
	// A resumed session re-arms the original spec with its clock already
	// past the kill time: the stale kill must not fire again.
	if len(fired) != 0 {
		t.Fatalf("fired %+v", fired)
	}
}

// TestParseEveryDirective round-trips one statement per grammar directive and
// checks every parsed field. The covered set is compared against the parser's
// dispatch table, so adding a directive without extending this test fails it.
func TestParseEveryDirective(t *testing.T) {
	cases := map[string]struct {
		spec  string
		check func(t *testing.T, p *Plan)
	}{
		"kill": {
			spec: "kill worker=3 at=2m restart=1m",
			check: func(t *testing.T, p *Plan) {
				want := Kill{Worker: 3, At: 2 * time.Minute, Restart: time.Minute}
				if len(p.Kills) != 1 || p.Kills[0] != want {
					t.Fatalf("kills %+v", p.Kills)
				}
			},
		},
		"broker": {
			spec: "broker node=1 at=30s restart=10s",
			check: func(t *testing.T, p *Plan) {
				want := BrokerKill{Node: 1, At: 30 * time.Second, Restart: 10 * time.Second}
				if len(p.Brokers) != 1 || p.Brokers[0] != want {
					t.Fatalf("brokers %+v", p.Brokers)
				}
			},
		},
		"scheduler": {
			spec: "scheduler at-task=sum-0042",
			check: func(t *testing.T, p *Plan) {
				want := SchedulerKill{AtTask: "sum-0042"}
				if len(p.Schedulers) != 1 || p.Schedulers[0] != want {
					t.Fatalf("schedulers %+v", p.Schedulers)
				}
			},
		},
		"rpc": {
			spec: "rpc addr=node1 rpc=mofka.append op=delay after=2 count=5 delay=300ms",
			check: func(t *testing.T, p *Plan) {
				want := RPCFault{Addr: "node1", RPC: "mofka.append", Op: OpDelay,
					After: 2, Count: 5, Delay: 300 * time.Millisecond}
				if len(p.RPCs) != 1 || p.RPCs[0] != want {
					t.Fatalf("rpcs %+v", p.RPCs)
				}
			},
		},
		"wal": {
			spec: "wal topic=executions partition=2 after=7 count=3",
			check: func(t *testing.T, p *Plan) {
				want := WALFault{Topic: "executions", Partition: 2, After: 7, Count: 3}
				if len(p.WALs) != 1 || p.WALs[0] != want {
					t.Fatalf("wals %+v", p.WALs)
				}
			},
		},
		"slow": {
			spec: "slow worker=2 at=1m factor=8 until=30s",
			check: func(t *testing.T, p *Plan) {
				want := Slow{Worker: 2, At: time.Minute, Factor: 8, Until: 30 * time.Second}
				if len(p.Slows) != 1 || p.Slows[0] != want {
					t.Fatalf("slows %+v", p.Slows)
				}
			},
		},
		"net": {
			spec: "net src=0 dst=1 factor=4 at=20s until=40s",
			check: func(t *testing.T, p *Plan) {
				want := NetFault{Src: 0, Dst: 1, Factor: 4, At: 20 * time.Second, Until: 40 * time.Second}
				if len(p.Nets) != 1 || p.Nets[0] != want {
					t.Fatalf("nets %+v", p.Nets)
				}
			},
		},
	}
	for name := range directives {
		if _, ok := cases[name]; !ok {
			t.Errorf("directive %q has no round-trip case — extend this test", name)
		}
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, ok := directives[name]; !ok {
				t.Fatalf("case %q is not a parser directive", name)
			}
			p, err := Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, p)
			if p.Spec != tc.spec {
				t.Fatalf("spec round-trip: %q != %q", p.Spec, tc.spec)
			}
		})
	}
}

// TestUnknownDirectiveListsAll checks the dispatch-table error advertises
// every directive, so the grammar's inventory cannot silently drift.
func TestUnknownDirectiveListsAll(t *testing.T) {
	_, err := Parse("explode worker=1 at=2s")
	if err == nil {
		t.Fatal("expected unknown-directive error")
	}
	for name := range directives {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention directive %q", err, name)
		}
	}
}

func TestParseSlowNetErrors(t *testing.T) {
	for _, spec := range []string{
		"slow at=5s factor=2",             // missing worker
		"slow worker=1 factor=2",          // missing at
		"slow worker=1 at=5s",             // missing factor
		"slow worker=1 at=5s factor=1",    // factor must exceed 1
		"slow worker=1 at=5s factor=0.5",  // factor must exceed 1
		"net dst=1 factor=2",              // missing src
		"net src=0 factor=2",              // missing dst
		"net src=0 dst=1",                 // missing factor
		"net src=0 dst=1 factor=1",        // factor must exceed 1
		"net src=0 dst=1 factor=2 op=bad", // unknown field
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

type fakeSlower struct {
	events []string
}

func (f *fakeSlower) SlowWorker(rank int, factor float64) {
	f.events = append(f.events, fmt.Sprintf("slow %d x%g", rank, factor))
}
func (f *fakeSlower) ClearSlowdown(rank int) {
	f.events = append(f.events, fmt.Sprintf("clear %d", rank))
}

func TestArmSlowdowns(t *testing.T) {
	p, err := Parse("slow worker=2 at=5s factor=8 until=3s; slow worker=0 at=1s factor=2")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	sl := &fakeSlower{}
	if err := NewController(p).ArmSlowdowns(k, sl, 4); err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := []string{"slow 0 x2", "slow 2 x8", "clear 2"}
	if len(sl.events) != len(want) {
		t.Fatalf("events %v", sl.events)
	}
	for i := range want {
		if sl.events[i] != want[i] {
			t.Fatalf("events %v, want %v", sl.events, want)
		}
	}
}

func TestArmSlowdownsValidatesRank(t *testing.T) {
	p, _ := Parse("slow worker=4 at=5s factor=2")
	if err := NewController(p).ArmSlowdowns(sim.NewKernel(1), &fakeSlower{}, 4); err == nil {
		t.Fatal("expected rank-out-of-range error")
	}
}

type fakeNet struct {
	events []string
}

func (f *fakeNet) SetLinkFactor(src, dst int, factor float64) {
	f.events = append(f.events, fmt.Sprintf("%d->%d x%g", src, dst, factor))
}

func TestArmLinkFaults(t *testing.T) {
	p, err := Parse("net src=0 dst=1 factor=4 at=5s until=3s; net src=1 dst=0 factor=2")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	n := &fakeNet{}
	if err := NewController(p).ArmLinkFaults(k, n, 2); err != nil {
		t.Fatal(err)
	}
	// The onset-less fault degrades immediately, before the kernel runs.
	if len(n.events) != 1 || n.events[0] != "1->0 x2" {
		t.Fatalf("pre-run events %v", n.events)
	}
	k.Run()
	want := []string{"1->0 x2", "0->1 x4", "0->1 x1"}
	if len(n.events) != len(want) {
		t.Fatalf("events %v", n.events)
	}
	for i := range want {
		if n.events[i] != want[i] {
			t.Fatalf("events %v, want %v", n.events, want)
		}
	}
}

func TestArmLinkFaultsValidatesNodes(t *testing.T) {
	p, _ := Parse("net src=0 dst=2 factor=2")
	if err := NewController(p).ArmLinkFaults(sim.NewKernel(1), &fakeNet{}, 2); err == nil {
		t.Fatal("expected node-out-of-range error")
	}
}
