package warabi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCreateWriteReadRoundTrip(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.Create(16)
	if err := tg.Write(id, 4, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	got, err := tg.Read(id, 4, 4)
	if err != nil || string(got) != "abcd" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	all, err := tg.ReadAll(id)
	if err != nil || len(all) != 16 {
		t.Fatalf("ReadAll len = %d, %v", len(all), err)
	}
}

func TestCreateWriteFastPath(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.CreateWrite([]byte("payload"))
	got, err := tg.ReadAll(id)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	p, err := tg.Persisted(id)
	if err != nil || !p {
		t.Fatalf("CreateWrite region not persisted: %v %v", p, err)
	}
}

func TestBoundsChecks(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.Create(8)
	if err := tg.Write(id, 6, []byte("xyz")); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("overflow write err = %v", err)
	}
	if _, err := tg.Read(id, -1, 2); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("negative read err = %v", err)
	}
	if _, err := tg.Read(id, 0, 9); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("long read err = %v", err)
	}
}

func TestUnknownRegion(t *testing.T) {
	tg := NewTarget("t0")
	if err := tg.Write(99, 0, []byte("x")); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tg.Read(99, 0, 1); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
	if err := tg.Persist(99); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
	if err := tg.Destroy(99); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
}

func TestDestroyReleases(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.Create(4)
	if err := tg.Destroy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Read(id, 0, 1); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("read after destroy: %v", err)
	}
	n, _, _ := tg.Stats()
	if n != 0 {
		t.Fatalf("regions after destroy = %d", n)
	}
}

func TestPersistFlow(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.Create(4)
	if p, _ := tg.Persisted(id); p {
		t.Fatal("fresh region already persisted")
	}
	if err := tg.Persist(id); err != nil {
		t.Fatal(err)
	}
	if p, _ := tg.Persisted(id); !p {
		t.Fatal("Persist did not stick")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.CreateWrite([]byte("immutable"))
	got, _ := tg.ReadAll(id)
	got[0] = 'X'
	again, _ := tg.ReadAll(id)
	if string(again) != "immutable" {
		t.Fatalf("region aliased by returned slice: %q", again)
	}
}

func TestStatsAccounting(t *testing.T) {
	tg := NewTarget("t0")
	id := tg.CreateWrite(bytes.Repeat([]byte{1}, 100))
	if _, err := tg.Read(id, 0, 40); err != nil {
		t.Fatal(err)
	}
	n, w, r := tg.Stats()
	if n != 1 || w != 100 || r != 40 {
		t.Fatalf("Stats = %d regions, %d written, %d read", n, w, r)
	}
}

func TestSizeAndIDsMonotonic(t *testing.T) {
	tg := NewTarget("t0")
	a := tg.Create(10)
	b := tg.Create(20)
	if b <= a {
		t.Fatalf("IDs not monotonic: %d then %d", a, b)
	}
	if s, _ := tg.Size(b); s != 20 {
		t.Fatalf("Size = %d", s)
	}
}

func TestProviderTargets(t *testing.T) {
	p := NewProvider()
	a := p.Target("x")
	if p.Target("x") != a {
		t.Fatal("Target not idempotent")
	}
	p.Target("y")
	if len(p.Names()) != 2 {
		t.Fatalf("Names = %v", p.Names())
	}
}

func TestConcurrentRegionOps(t *testing.T) {
	tg := NewTarget("conc")
	var wg sync.WaitGroup
	ids := make([]RegionID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := []byte(fmt.Sprintf("goroutine-%d", g))
			id := tg.CreateWrite(data)
			ids[g] = id
			for i := 0; i < 100; i++ {
				got, err := tg.ReadAll(id)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent read mismatch: %q %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[RegionID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate region ID %d handed out", id)
		}
		seen[id] = true
	}
}
