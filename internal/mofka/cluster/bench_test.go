package cluster

import (
	"fmt"
	"testing"

	"taskprov/internal/mofka"
)

// The cluster benchmarks quantify the price of quorum replication relative
// to a standalone broker on the identical workload: one producer pushing
// pre-encoded provenance-sized events (a ~200-byte metadata document plus a
// 64-byte payload) in batches of 128 across 4 partitions.
//
//	make bench-cluster    # runs both and records BENCH_cluster.json

var benchMeta = []byte(`{"task":"process_image","worker":3,"hostname":"nid00123","submitted":12.5,"started":13.1,"finished":14.9,"status":"done","nbytes":1048576,"deps":["t-000120","t-000121"]}`)

var benchData = make([]byte, 64)

func benchPush(b *testing.B, push func(meta, data []byte) error, flush func() error) {
	b.Helper()
	b.SetBytes(int64(len(benchMeta) + len(benchData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := push(benchMeta, benchData); err != nil {
			b.Fatal(err)
		}
	}
	if err := flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStandalonePushBatch is the single-broker baseline.
func BenchmarkStandalonePushBatch(b *testing.B) {
	broker := mofka.NewStandaloneBroker()
	defer func() { _ = broker.Close() }()
	topic, err := broker.CreateTopic(mofka.TopicConfig{Name: "bench", Partitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	p := topic.NewProducer(mofka.ProducerOptions{BatchSize: 128})
	defer func() { _ = p.Close() }()
	benchPush(b, p.PushRaw, p.Flush)
}

// BenchmarkClusterPushBatch measures quorum-replicated appends at several
// deployment shapes.
func BenchmarkClusterPushBatch(b *testing.B) {
	for _, shape := range []struct {
		brokers, rf int
	}{
		{3, 1}, // sharding only: no replication
		{3, 2}, // the default: leader + 1 follower, quorum 2
		{3, 3}, // full replication, quorum 2
		{5, 3}, // wider cluster, quorum 2
	} {
		b.Run(fmt.Sprintf("brokers=%d/rf=%d", shape.brokers, shape.rf), func(b *testing.B) {
			c, err := New(Config{Brokers: shape.brokers, ReplicationFactor: shape.rf})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "bench", Partitions: 4})
			if err != nil {
				b.Fatal(err)
			}
			p := ct.NewProducer(mofka.ProducerOptions{BatchSize: 128})
			defer p.Close()
			benchPush(b, p.PushRaw, p.Flush)
		})
	}
}
