package sim

import (
	"testing"
)

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var marks []Time
	k.Go(func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(Seconds(1))
		marks = append(marks, p.Now())
		p.Sleep(Seconds(2))
		marks = append(marks, p.Now())
	})
	k.Run()
	want := []Time{0, Seconds(1), Seconds(3)}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(1)
		var log []string
		k.Go(func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Sleep(Seconds(2))
			}
		})
		k.Go(func(p *Proc) {
			p.Sleep(Seconds(1))
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Sleep(Seconds(2))
			}
		})
		k.Run()
		return log
	}
	first := run()
	want := "ababab"
	got := ""
	for _, s := range first {
		got += s
	}
	if got != want {
		t.Fatalf("interleaving = %q, want %q", got, want)
	}
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if again[j] != first[j] {
				t.Fatal("process interleaving nondeterministic across identical runs")
			}
		}
	}
}

func TestProcAwaitSharedServer(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "dev", 100, 0)
	var elapsed Time
	k.Go(func(p *Proc) {
		start := p.Now()
		p.Await(func(done func()) { s.Submit(200, done) })
		elapsed = p.Now() - start
	})
	k.Run()
	if !almostEqual(elapsed, Seconds(2), Microsecond) {
		t.Fatalf("Await elapsed %v, want 2s", elapsed)
	}
}

func TestProcAwaitZeroWork(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "dev", 100, 0)
	finished := false
	k.Go(func(p *Proc) {
		p.Await(func(done func()) { s.Submit(0, done) })
		finished = true
	})
	k.Run()
	if !finished {
		t.Fatal("process never resumed from zero-work Await")
	}
}

func TestManyProcsComplete(t *testing.T) {
	k := NewKernel(1)
	s := NewSharedServer(k, "dev", 1000, 0)
	done := 0
	for i := 0; i < 100; i++ {
		i := i
		k.Go(func(p *Proc) {
			p.Sleep(Time(i) * Millisecond)
			p.Await(func(d func()) { s.Submit(float64(10+i), d) })
			done++
		})
	}
	k.Run()
	if done != 100 {
		t.Fatalf("only %d/100 processes completed", done)
	}
}

func TestProcYield(t *testing.T) {
	k := NewKernel(1)
	var log []string
	k.Go(func(p *Proc) {
		log = append(log, "p1-start")
		p.Yield()
		log = append(log, "p1-after-yield")
	})
	k.Go(func(p *Proc) {
		log = append(log, "p2")
	})
	k.Run()
	// p1 starts first, yields; p2 (scheduled at same timestamp) then runs
	// before p1 resumes.
	want := []string{"p1-start", "p2", "p1-after-yield"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestProcNegativeSleepClamped(t *testing.T) {
	k := NewKernel(1)
	ok := false
	k.Go(func(p *Proc) {
		p.Sleep(-Second)
		ok = p.Now() == 0
	})
	k.Run()
	if !ok {
		t.Fatal("negative sleep moved the clock")
	}
}
