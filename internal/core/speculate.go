// Speculation wiring: the session side of the gray-failure tolerance layer.
// The scheduler's hedged-execution machinery lives in internal/dask
// (speculate.go) and the adaptive retry layer in internal/mochi/mercury
// (retry.go); this file closes both loops into the provenance stream — the
// live straggler detector feeds the scheduler (wired in NewSession), and the
// retry layer's hooks land on the speculation topic so every retry and budget
// denial is part of the run's record.
package core

import (
	"errors"
	"fmt"
	"time"

	"taskprov/internal/dask"
	"taskprov/internal/mochi/mercury"
)

// DefaultRetryBudget is the per-run Mercury retry allowance used when
// SessionConfig.RetryBudget is zero: enough to ride out a transient brownout,
// small enough that a dead destination drains it in seconds instead of
// storming for the whole run.
const DefaultRetryBudget = 64

// effectiveRetryBudgetN resolves SessionConfig.RetryBudget to the actual
// allowance (0 = default, negative = none).
func (s *Session) effectiveRetryBudgetN() int {
	n := s.cfg.RetryBudget
	if n == 0 {
		return DefaultRetryBudget
	}
	if n < 0 {
		return 0
	}
	return n
}

// retryBudgetSize reports the run's retry allowance for the metadata chart —
// zero when no caller was ever wrapped, so fault-free runs don't record a
// policy that never engaged.
func (s *Session) retryBudgetSize() int {
	if !s.retryEngaged {
		return 0
	}
	return s.effectiveRetryBudgetN()
}

// WrapCaller wraps a Mercury caller with the session's adaptive retry layer:
// per-destination EWMA-latency timeouts, capped exponential backoff with
// jitter seeded deterministically from the run seed and the destination
// address, and one retry budget shared by every caller the session wraps —
// so a melting cluster spends at most SessionConfig.RetryBudget extra calls
// run-wide, then degrades to clean errors. Every retry and every budget
// denial is recorded on the speculation provenance topic (SpecRetry /
// SpecBudgetExhausted), timestamped with virtual time.
//
// The recording hooks go through the session's collector, so — like every
// provenance plugin — wrapped callers must issue their calls from the
// simulation goroutine.
func (s *Session) WrapCaller(c mercury.Caller, addr string) *mercury.RetryCaller {
	if s.retryBudget == nil {
		s.retryBudget = mercury.NewRetryBudget(s.effectiveRetryBudgetN())
	}
	s.retryEngaged = true
	rc := mercury.NewRetryCaller(c, addr, mercury.RetryPolicy{Seed: s.cfg.Seed}, s.retryBudget)
	rc.OnRetry = func(addr, rpc string, attempt int, wait time.Duration, err error) {
		s.pushSpeculation(dask.SpeculationEvent{
			Kind:    dask.SpecRetry,
			Primary: addr,
			Attempt: attempt,
			Detail:  fmt.Sprintf("%s: backoff %v after %v", rpc, wait, err),
			At:      s.k.Now(),
		})
	}
	rc.OnExhausted = func(addr, rpc string, attempts int, err error) {
		if !errors.Is(err, mercury.ErrRetryBudgetExhausted) {
			// Per-call attempt exhaustion: the retries themselves are already
			// on the record, and the error surfaces to the caller.
			return
		}
		s.pushSpeculation(dask.SpeculationEvent{
			Kind:    dask.SpecBudgetExhausted,
			Primary: addr,
			Attempt: attempts,
			Detail:  fmt.Sprintf("%s: %v", rpc, err),
			At:      s.k.Now(),
		})
	}
	return rc
}

// RetryBudgetRemaining reports how much of the shared retry budget is left
// (the full allowance before any caller was wrapped).
func (s *Session) RetryBudgetRemaining() int {
	if s.retryBudget == nil {
		return s.effectiveRetryBudgetN()
	}
	return s.retryBudget.Remaining()
}

func (s *Session) pushSpeculation(ev dask.SpeculationEvent) {
	if s.collector == nil {
		return
	}
	s.collector.push(TopicSpeculation, SpeculationEventMeta(ev))
}
