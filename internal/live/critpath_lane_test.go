package live

import (
	"testing"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
	"taskprov/internal/sim"
)

// critpathEvents builds a two-partition event stream for a diamond DAG
// (a -> b, a -> c, {b,c} -> d) with known durations: the heaviest chain is
// a(1s) -> c(4s) -> d(8s) = 13s.
func critpathEvents() (p0, p1 []mofka.Metadata) {
	meta := func(key string, deps ...dask.TaskKey) mofka.Metadata {
		return provenance.TaskMetaEvent(dask.TaskMeta{
			Key: dask.TaskKey(key), Prefix: key, GraphID: 1, Deps: deps,
		})
	}
	exec := func(key string, start, stop float64) mofka.Metadata {
		return provenance.ExecutionEvent(dask.TaskExecution{
			Key: dask.TaskKey(key), Worker: "w0", Hostname: "n0",
			Start: sim.Seconds(start), Stop: sim.Seconds(stop),
		})
	}
	p0 = []mofka.Metadata{
		meta("a"),
		meta("b", "a"),
		exec("a", 0, 1),
		exec("b", 1, 3),
	}
	p1 = []mofka.Metadata{
		meta("c", "a"),
		meta("d", "b", "c"),
		exec("c", 1, 5),
		exec("d", 5, 13),
	}
	return p0, p1
}

// TestCriticalPathLaneCommutes feeds the same two partitions in both merge
// orders (and a fine-grained interleaving) and requires the identical
// CriticalPathSeconds — the lane must be a pure function of the record set.
func TestCriticalPathLaneCommutes(t *testing.T) {
	p0, p1 := critpathEvents()

	run := func(feed func(a *Aggregator)) float64 {
		a := NewAggregator(AggregatorOptions{})
		feed(a)
		return a.Snapshot().CriticalPathSeconds
	}

	forward := run(func(a *Aggregator) {
		for _, m := range p0 {
			a.IngestEvent(topicOf(m), 0, m)
		}
		for _, m := range p1 {
			a.IngestEvent(topicOf(m), 1, m)
		}
	})
	backward := run(func(a *Aggregator) {
		for _, m := range p1 {
			a.IngestEvent(topicOf(m), 1, m)
		}
		for _, m := range p0 {
			a.IngestEvent(topicOf(m), 0, m)
		}
	})
	interleaved := run(func(a *Aggregator) {
		for i := 0; i < len(p0) || i < len(p1); i++ {
			if i < len(p1) {
				a.IngestEvent(topicOf(p1[i]), 1, p1[i])
			}
			if i < len(p0) {
				a.IngestEvent(topicOf(p0[i]), 0, p0[i])
			}
		}
	})

	if forward != 13 {
		t.Errorf("critical path lane = %g, want 13 (a->c->d)", forward)
	}
	if backward != forward || interleaved != forward {
		t.Errorf("lane not commutative: forward %g, backward %g, interleaved %g",
			forward, backward, interleaved)
	}
}

// topicOf routes a test event to its provenance topic by shape.
func topicOf(m mofka.Metadata) string {
	if _, ok := m["deps"]; ok {
		return provenance.TopicTaskMeta
	}
	return provenance.TopicExecutions
}

// TestCriticalPathLaneReexecution: a re-executed task (worker crash) must
// contribute its longest attempt regardless of which record arrives first.
func TestCriticalPathLaneReexecution(t *testing.T) {
	short := provenance.ExecutionEvent(dask.TaskExecution{
		Key: "x", Worker: "w0", Hostname: "n0", Start: sim.Seconds(0), Stop: sim.Seconds(1),
	})
	long := provenance.ExecutionEvent(dask.TaskExecution{
		Key: "x", Worker: "w1", Hostname: "n1", Start: sim.Seconds(2), Stop: sim.Seconds(5),
	})
	for _, order := range [][]mofka.Metadata{{short, long}, {long, short}} {
		a := NewAggregator(AggregatorOptions{})
		for i, m := range order {
			a.IngestEvent(provenance.TopicExecutions, i, m)
		}
		if got := a.Snapshot().CriticalPathSeconds; got != 3 {
			t.Errorf("re-execution lane = %g, want 3 (longest attempt)", got)
		}
	}
}

// TestCriticalPathLaneCap: past CritPathTaskCap the lane stops growing but
// stays well-defined.
func TestCriticalPathLaneCap(t *testing.T) {
	a := NewAggregator(AggregatorOptions{CritPathTaskCap: 2})
	for i, k := range []string{"a", "b", "c", "d"} {
		a.IngestEvent(provenance.TopicExecutions, 0, provenance.ExecutionEvent(dask.TaskExecution{
			Key: dask.TaskKey(k), Worker: "w0", Hostname: "n0",
			Start: sim.Seconds(float64(i)), Stop: sim.Seconds(float64(i) + 1),
		}))
	}
	if got := a.Snapshot().CriticalPathSeconds; got != 1 {
		t.Errorf("capped lane = %g, want 1 (independent 1s tasks, capped at 2)", got)
	}
}
