// Package perfrecup is the reproduction of PERFRECUP, the paper's
// multisource data aggregation, analysis, and visualization engine: it
// loads performance data produced by many layers (Darshan logs, Mofka task
// provenance topics, job metadata) into uniform dataframes ("views"), fuses
// them on shared identifiers (hostname, pthread ID, timestamps), and
// produces the paper's tables and figures.
package perfrecup

import (
	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/perfrecup/frame"
)

// ExecutionsView tabulates task executions: one row per executed task with
// its placement, thread, window, and output size.
func ExecutionsView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicExecutions)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	key := make([]string, n)
	prefix := make([]string, n)
	group := make([]string, n)
	worker := make([]string, n)
	host := make([]string, n)
	tid := make([]int64, n)
	start := make([]float64, n)
	stop := make([]float64, n)
	dur := make([]float64, n)
	size := make([]int64, n)
	graph := make([]int64, n)
	for i, m := range metas {
		e := core.ParseExecution(m)
		key[i] = string(e.Key)
		prefix[i] = dask.KeyPrefix(e.Key)
		group[i] = dask.KeyGroup(e.Key)
		worker[i] = e.Worker
		host[i] = e.Hostname
		tid[i] = int64(e.ThreadID)
		start[i] = e.Start.Seconds()
		stop[i] = e.Stop.Seconds()
		dur[i] = (e.Stop - e.Start).Seconds()
		size[i] = e.OutputSize
		graph[i] = int64(e.GraphID)
	}
	return frame.New(
		frame.Strings("key", key...),
		frame.Strings("prefix", prefix...),
		frame.Strings("group", group...),
		frame.Strings("worker", worker...),
		frame.Strings("hostname", host...),
		frame.Ints("thread_id", tid...),
		frame.Floats("start", start...),
		frame.Floats("stop", stop...),
		frame.Floats("duration", dur...),
		frame.Ints("output_size", size...),
		frame.Ints("graph_id", graph...),
	)
}

// TransitionsView tabulates every captured state transition.
func TransitionsView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicTransitions)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	key := make([]string, n)
	from := make([]string, n)
	to := make([]string, n)
	stim := make([]string, n)
	loc := make([]string, n)
	at := make([]float64, n)
	for i, m := range metas {
		t := core.ParseTransition(m)
		key[i] = string(t.Key)
		from[i] = string(t.From)
		to[i] = string(t.To)
		stim[i] = t.Stimulus
		loc[i] = t.Location
		at[i] = t.At.Seconds()
	}
	return frame.New(
		frame.Strings("key", key...),
		frame.Strings("from", from...),
		frame.Strings("to", to...),
		frame.Strings("stimulus", stim...),
		frame.Strings("location", loc...),
		frame.Floats("at", at...),
	)
}

// TransfersView tabulates inter-worker dependency transfers.
func TransfersView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicTransfers)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	key := make([]string, n)
	from := make([]string, n)
	to := make([]string, n)
	bytes := make([]int64, n)
	start := make([]float64, n)
	stop := make([]float64, n)
	dur := make([]float64, n)
	same := make([]bool, n)
	viaProxy := make([]bool, n)
	resolve := make([]float64, n)
	for i, m := range metas {
		t := core.ParseTransfer(m)
		key[i] = string(t.Key)
		from[i] = t.From
		to[i] = t.To
		bytes[i] = t.Bytes
		start[i] = t.Start.Seconds()
		stop[i] = t.Stop.Seconds()
		dur[i] = (t.Stop - t.Start).Seconds()
		same[i] = t.SameNode
		viaProxy[i] = t.ViaProxy
		resolve[i] = t.ResolveLatency.Seconds()
	}
	return frame.New(
		frame.Strings("key", key...),
		frame.Strings("from", from...),
		frame.Strings("to", to...),
		frame.Ints("bytes", bytes...),
		frame.Floats("start", start...),
		frame.Floats("stop", stop...),
		frame.Floats("duration", dur...),
		frame.Bools("same_node", same...),
		frame.Bools("via_proxy", viaProxy...),
		frame.Floats("resolve_latency", resolve...),
	)
}

// ProxyView tabulates the pass-by-reference data-plane events: one row per
// proxy-store operation (publish, resolve, miss, free, reclaim) with the
// blob's logical size and the store's resident footprint after the
// operation — the raw series behind the live resident-bytes lane.
func ProxyView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicProxy)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	op := make([]string, n)
	key := make([]string, n)
	worker := make([]string, n)
	bytes := make([]int64, n)
	resident := make([]int64, n)
	resolve := make([]float64, n)
	at := make([]float64, n)
	for i, m := range metas {
		e := core.ParseProxyEvent(m)
		op[i] = e.Op
		key[i] = string(e.Key)
		worker[i] = e.Worker
		bytes[i] = e.Bytes
		resident[i] = e.Resident
		resolve[i] = e.ResolveLatency.Seconds()
		at[i] = e.At.Seconds()
	}
	return frame.New(
		frame.Strings("op", op...),
		frame.Strings("key", key...),
		frame.Strings("worker", worker...),
		frame.Ints("bytes", bytes...),
		frame.Ints("resident", resident...),
		frame.Floats("resolve_latency", resolve...),
		frame.Floats("at", at...),
	)
}

// WarningsView tabulates runtime warnings (unresponsive event loop, GC).
func WarningsView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicWarnings)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	kind := make([]string, n)
	worker := make([]string, n)
	host := make([]string, n)
	at := make([]float64, n)
	dur := make([]float64, n)
	for i, m := range metas {
		w := core.ParseWarning(m)
		kind[i] = string(w.Kind)
		worker[i] = w.Worker
		host[i] = w.Hostname
		at[i] = w.At.Seconds()
		dur[i] = w.Duration.Seconds()
	}
	return frame.New(
		frame.Strings("kind", kind...),
		frame.Strings("worker", worker...),
		frame.Strings("hostname", host...),
		frame.Floats("at", at...),
		frame.Floats("duration", dur...),
	)
}

// DXTView tabulates every Darshan DXT trace segment across the run's
// per-worker logs, with the pthread ID join key the paper adds.
func DXTView(art *core.RunArtifacts) (*frame.Frame, error) {
	var rank []int64
	var host, path, op []string
	var tid, offset, length []int64
	var start, end, dur []float64
	for _, l := range art.DarshanLogs {
		for _, rec := range l.Records {
			for _, s := range rec.DXT {
				rank = append(rank, int64(l.Job.Rank))
				host = append(host, l.Job.Hostname)
				path = append(path, rec.Path)
				op = append(op, s.Op.String())
				tid = append(tid, int64(s.TID))
				offset = append(offset, s.Offset)
				length = append(length, s.Length)
				start = append(start, s.Start)
				end = append(end, s.End)
				dur = append(dur, s.End-s.Start)
			}
		}
	}
	return frame.New(
		frame.Ints("rank", rank...),
		frame.Strings("hostname", host...),
		frame.Strings("path", path...),
		frame.Strings("op", op...),
		frame.Ints("thread_id", tid...),
		frame.Ints("offset", offset...),
		frame.Ints("length", length...),
		frame.Floats("start", start...),
		frame.Floats("end", end...),
		frame.Floats("duration", dur...),
	)
}

// PosixView tabulates the per-file POSIX counter records.
func PosixView(art *core.RunArtifacts) (*frame.Frame, error) {
	var rank []int64
	var host, path []string
	var opens, reads, writes, bytesRead, bytesWritten []int64
	var readTime, writeTime, metaTime []float64
	for _, l := range art.DarshanLogs {
		for _, rec := range l.Records {
			rank = append(rank, int64(l.Job.Rank))
			host = append(host, l.Job.Hostname)
			path = append(path, rec.Path)
			opens = append(opens, rec.Counters.Opens)
			reads = append(reads, rec.Counters.Reads)
			writes = append(writes, rec.Counters.Writes)
			bytesRead = append(bytesRead, rec.Counters.BytesRead)
			bytesWritten = append(bytesWritten, rec.Counters.BytesWritten)
			readTime = append(readTime, rec.Counters.ReadTime)
			writeTime = append(writeTime, rec.Counters.WriteTime)
			metaTime = append(metaTime, rec.Counters.MetaTime)
		}
	}
	return frame.New(
		frame.Ints("rank", rank...),
		frame.Strings("hostname", host...),
		frame.Strings("path", path...),
		frame.Ints("opens", opens...),
		frame.Ints("reads", reads...),
		frame.Ints("writes", writes...),
		frame.Ints("bytes_read", bytesRead...),
		frame.Ints("bytes_written", bytesWritten...),
		frame.Floats("read_time", readTime...),
		frame.Floats("write_time", writeTime...),
		frame.Floats("meta_time", metaTime...),
	)
}

// TaskMetaView tabulates the static task metadata (key, prefix, group,
// graph, dependency count).
func TaskMetaView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicTaskMeta)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	key := make([]string, n)
	prefix := make([]string, n)
	group := make([]string, n)
	graph := make([]int64, n)
	ndeps := make([]int64, n)
	at := make([]float64, n)
	for i, m := range metas {
		tm := core.ParseTaskMeta(m)
		key[i] = string(tm.Key)
		prefix[i] = tm.Prefix
		group[i] = tm.Group
		graph[i] = int64(tm.GraphID)
		ndeps[i] = int64(len(tm.Deps))
		at[i] = tm.At.Seconds()
	}
	return frame.New(
		frame.Strings("key", key...),
		frame.Strings("prefix", prefix...),
		frame.Strings("group", group...),
		frame.Ints("graph_id", graph...),
		frame.Ints("n_deps", ndeps...),
		frame.Floats("submitted", at...),
	)
}

// HeartbeatsView tabulates worker heartbeat samples.
func HeartbeatsView(art *core.RunArtifacts) (*frame.Frame, error) {
	metas, err := core.DrainTopic(art.Broker, core.TopicHeartbeats)
	if err != nil {
		return nil, err
	}
	n := len(metas)
	worker := make([]string, n)
	at := make([]float64, n)
	mem := make([]int64, n)
	execing := make([]int64, n)
	ready := make([]int64, n)
	for i, m := range metas {
		h := core.ParseHeartbeat(m)
		worker[i] = h.Worker
		at[i] = h.At.Seconds()
		mem[i] = h.Memory
		execing[i] = int64(h.Executing)
		ready[i] = int64(h.Ready)
	}
	return frame.New(
		frame.Strings("worker", worker...),
		frame.Floats("at", at...),
		frame.Ints("memory", mem...),
		frame.Ints("executing", execing...),
		frame.Ints("ready", ready...),
	)
}

// WorkerUtilizationView aggregates the heartbeat stream per worker: mean
// executing threads, mean ready backlog, and mean/peak memory — the
// dashboard-style utilization summary built from the paper's worker
// heartbeat samples.
func WorkerUtilizationView(art *core.RunArtifacts) (*frame.Frame, error) {
	hb, err := HeartbeatsView(art)
	if err != nil {
		return nil, err
	}
	if hb.NRows() == 0 {
		return frame.New(
			frame.Strings("worker"),
			frame.Floats("mean_executing"),
			frame.Floats("mean_ready"),
			frame.Floats("mean_memory"),
			frame.Floats("peak_memory"),
			frame.Ints("samples"),
		)
	}
	return hb.GroupBy("worker").Agg(
		frame.Agg{Col: "executing", Fn: frame.Mean, As: "mean_executing"},
		frame.Agg{Col: "ready", Fn: frame.Mean, As: "mean_ready"},
		frame.Agg{Col: "memory", Fn: frame.Mean, As: "mean_memory"},
		frame.Agg{Col: "memory", Fn: frame.Max, As: "peak_memory"},
		frame.Agg{Col: "at", Fn: frame.Count, As: "samples"},
	), nil
}
