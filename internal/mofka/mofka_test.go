package mofka

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTopic(t *testing.T, name string, parts int) (*Broker, *Topic) {
	t.Helper()
	b := NewStandaloneBroker()
	tp, err := b.CreateTopic(TopicConfig{Name: name, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return b, tp
}

func TestCreateOpenTopic(t *testing.T) {
	b, _ := newTopic(t, "tasks", 2)
	if _, err := b.CreateTopic(TopicConfig{Name: "tasks"}); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	tp, err := b.OpenTopic("tasks")
	if err != nil || tp.Partitions() != 2 {
		t.Fatalf("open: %v, partitions=%d", err, tp.Partitions())
	}
	if _, err := b.OpenTopic("none"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("open missing err = %v", err)
	}
	if got := b.Topics(); len(got) != 1 || got[0] != "tasks" {
		t.Fatalf("Topics = %v", got)
	}
}

func TestOpenOrCreateTopic(t *testing.T) {
	b := NewStandaloneBroker()
	a, err := b.OpenOrCreateTopic(TopicConfig{Name: "t", Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.OpenOrCreateTopic(TopicConfig{Name: "t", Partitions: 99})
	if err != nil || c != a {
		t.Fatalf("second OpenOrCreate: %v, same=%v", err, c == a)
	}
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	for i := 0; i < 10; i++ {
		err := p.Push(Metadata{"i": i, "kind": "test"}, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	c, err := tp.NewConsumer(ConsumerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := c.Drain()
	if err != nil || len(evs) != 10 {
		t.Fatalf("drained %d events, err %v", len(evs), err)
	}
	for i, ev := range evs {
		m, err := ev.ParseMetadata()
		if err != nil {
			t.Fatal(err)
		}
		if int(m["i"].(float64)) != i {
			t.Fatalf("event %d metadata = %v", i, m)
		}
		if string(ev.Data) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("event %d data = %q", i, ev.Data)
		}
	}
}

func TestEventsInvisibleUntilFlush(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 100})
	p.Push(Metadata{"x": 1}, nil)
	c, _ := tp.NewConsumer(ConsumerOptions{})
	if _, ok, _ := c.Pull(); ok {
		t.Fatal("unflushed event visible")
	}
	p.Flush()
	if _, ok, _ := c.Pull(); !ok {
		t.Fatal("flushed event invisible")
	}
}

func TestBatchSizeTriggersAutoFlush(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 5})
	for i := 0; i < 5; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	if n := tp.Events(); n != 5 {
		t.Fatalf("events after size trigger = %d, want 5", n)
	}
	_, flushes := p.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d", flushes)
	}
}

func TestMaxBatchBytesTriggersAutoFlush(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 1000, MaxBatchBytes: 100})
	p.Push(Metadata{}, make([]byte, 150))
	if n := tp.Events(); n != 1 {
		t.Fatalf("events after byte trigger = %d", n)
	}
}

func TestRoundRobinPartitioning(t *testing.T) {
	_, tp := newTopic(t, "t", 4)
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 0; i < 8; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	for i := 0; i < 4; i++ {
		part, _ := tp.Partition(i)
		if part.Length() != 2 {
			t.Fatalf("partition %d length = %d, want 2", i, part.Length())
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	_, tp := newTopic(t, "t", 2)
	p := tp.NewProducer(ProducerOptions{
		BatchSize:   1,
		Partitioner: func(meta []byte, n int) int { return len(meta) % n },
	})
	p.Push(Metadata{"a": 1}, nil)
	p.Flush()
	total := tp.Events()
	if total != 1 {
		t.Fatalf("events = %d", total)
	}
}

func TestBadPartitionerRejected(t *testing.T) {
	_, tp := newTopic(t, "t", 2)
	p := tp.NewProducer(ProducerOptions{Partitioner: func([]byte, int) int { return 7 }})
	if err := p.Push(Metadata{}, nil); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidatorRejectsBadMetadata(t *testing.T) {
	b := NewStandaloneBroker()
	tp, err := b.CreateTopic(TopicConfig{
		Name: "validated",
		Validator: func(meta []byte) error {
			if len(meta) < 5 {
				return errors.New("too small")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tp.NewProducer(ProducerOptions{})
	if err := p.PushRaw([]byte(`{}`), nil); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("validator not applied: %v", err)
	}
	if err := p.PushRaw([]byte(`{"ok":1}`), nil); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
}

func TestPushAfterCloseFails(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	p.Push(Metadata{"i": 1}, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if n := tp.Events(); n != 1 {
		t.Fatalf("Close did not flush: events = %d", n)
	}
	if err := p.Push(Metadata{"i": 2}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 1000, FlushInterval: 5 * time.Millisecond})
	defer p.Close()
	p.Push(Metadata{"x": 1}, nil)
	deadline := time.Now().Add(2 * time.Second)
	for tp.Events() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never shipped the event")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConsumerNoData(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	p.Push(Metadata{"k": "v"}, []byte("big payload"))
	p.Flush()
	c, _ := tp.NewConsumer(ConsumerOptions{NoData: true})
	ev, ok, err := c.Pull()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if ev.Data != nil {
		t.Fatalf("NoData consumer got payload %q", ev.Data)
	}
	if len(ev.Metadata) == 0 {
		t.Fatal("metadata missing")
	}
}

func TestConsumerPartitionSubset(t *testing.T) {
	_, tp := newTopic(t, "t", 4)
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 0; i < 8; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	c, err := tp.NewConsumer(ConsumerOptions{Partitions: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	evs, _ := c.Drain()
	if len(evs) != 4 {
		t.Fatalf("subset consumer got %d events, want 4", len(evs))
	}
	for _, ev := range evs {
		if ev.Partition != 1 && ev.Partition != 3 {
			t.Fatalf("event from partition %d", ev.Partition)
		}
	}
}

func TestConsumerInvalidPartition(t *testing.T) {
	_, tp := newTopic(t, "t", 2)
	if _, err := tp.NewConsumer(ConsumerOptions{Partitions: []int{5}}); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestCommitAndResume(t *testing.T) {
	b, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	for i := 0; i < 10; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	p.Flush()

	c1, _ := tp.NewConsumer(ConsumerOptions{Name: "analysis"})
	for i := 0; i < 4; i++ {
		ev, ok, _ := c1.Pull()
		if !ok {
			t.Fatal("pull failed")
		}
		if err := c1.Commit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.LoadCursor("analysis", "t", 0); got != 4 {
		t.Fatalf("cursor = %d, want 4", got)
	}

	c2, _ := tp.NewConsumer(ConsumerOptions{Name: "analysis", FromCommitted: true})
	evs, _ := c2.Drain()
	if len(evs) != 6 {
		t.Fatalf("resumed consumer got %d events, want 6", len(evs))
	}
	m, _ := evs[0].ParseMetadata()
	if int(m["i"].(float64)) != 4 {
		t.Fatalf("resume started at %v", m)
	}
}

func TestAnonymousCommitFails(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	c, _ := tp.NewConsumer(ConsumerOptions{})
	if err := c.Commit(Event{}); err == nil {
		t.Fatal("anonymous commit succeeded")
	}
}

func TestPullBatchAndProgress(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	for i := 0; i < 25; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	p.Flush()
	c, _ := tp.NewConsumer(ConsumerOptions{Prefetch: 10})
	batch, err := c.PullBatch(20)
	if err != nil || len(batch) != 20 {
		t.Fatalf("batch = %d events, %v", len(batch), err)
	}
	rest, _ := c.Drain()
	if len(rest) != 5 {
		t.Fatalf("rest = %d", len(rest))
	}
	if c.Progress(0) != 25 {
		t.Fatalf("progress = %d", c.Progress(0))
	}
}

func TestPullBlockingSeesLiveEvents(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	c, _ := tp.NewConsumer(ConsumerOptions{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		p := tp.NewProducer(ProducerOptions{})
		p.Push(Metadata{"live": true}, nil)
		p.Flush()
	}()
	ev, ok, err := c.PullBlocking(2 * time.Second)
	if err != nil || !ok {
		t.Fatalf("PullBlocking: ok=%v err=%v", ok, err)
	}
	m, _ := ev.ParseMetadata()
	if m["live"] != true {
		t.Fatalf("metadata = %v", m)
	}
}

func TestPullBlockingTimesOut(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	c, _ := tp.NewConsumer(ConsumerOptions{})
	start := time.Now()
	_, ok, err := c.PullBlocking(30 * time.Millisecond)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestConcurrentProducers(t *testing.T) {
	_, tp := newTopic(t, "t", 4)
	p := tp.NewProducer(ProducerOptions{BatchSize: 16})
	var wg sync.WaitGroup
	const goroutines, per = 8, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := p.Push(Metadata{"g": g, "i": i}, []byte{byte(i)}); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Flush()
	if n := tp.Events(); n != goroutines*per {
		t.Fatalf("events = %d, want %d", n, goroutines*per)
	}
	c, _ := tp.NewConsumer(ConsumerOptions{})
	evs, err := c.Drain()
	if err != nil || len(evs) != goroutines*per {
		t.Fatalf("drained %d, err %v", len(evs), err)
	}
}

func TestPerPartitionOrderingPreserved(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{BatchSize: 7})
	const n = 100
	for i := 0; i < n; i++ {
		p.Push(Metadata{"seq": i}, nil)
	}
	p.Flush()
	c, _ := tp.NewConsumer(ConsumerOptions{})
	evs, _ := c.Drain()
	if len(evs) != n {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		m, _ := ev.ParseMetadata()
		if int(m["seq"].(float64)) != i {
			t.Fatalf("event %d has seq %v: ordering broken", i, m["seq"])
		}
		if ev.ID != uint64(i) {
			t.Fatalf("event %d has ID %d", i, ev.ID)
		}
	}
}

func TestMetadataEncodeDecode(t *testing.T) {
	m := Metadata{"key": "k1", "n": 3.5, "nested": map[string]any{"a": true}}
	b := m.Encode()
	got, err := DecodeMetadata(b)
	if err != nil {
		t.Fatal(err)
	}
	if got["key"] != "k1" || got["n"] != 3.5 {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := DecodeMetadata([]byte("{bad")); err == nil {
		t.Fatal("bad metadata decoded")
	}
}

func TestEmptyTopicNameRejected(t *testing.T) {
	b := NewStandaloneBroker()
	if _, err := b.CreateTopic(TopicConfig{}); err == nil {
		t.Fatal("empty topic name accepted")
	}
}

func TestConsumerDataSelector(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	for i := 0; i < 10; i++ {
		p.Push(Metadata{"i": i}, []byte(fmt.Sprintf("payload-%d", i)))
	}
	p.Flush()
	c, err := tp.NewConsumer(ConsumerOptions{
		DataSelector: func(meta []byte) bool {
			m, _ := DecodeMetadata(meta)
			return int(m["i"].(float64))%2 == 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := c.Drain()
	if err != nil || len(evs) != 10 {
		t.Fatalf("drained %d, %v", len(evs), err)
	}
	for i, ev := range evs {
		if i%2 == 0 && string(ev.Data) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("selected event %d missing data: %q", i, ev.Data)
		}
		if i%2 == 1 && ev.Data != nil {
			t.Fatalf("unselected event %d carries data", i)
		}
	}
}

func TestNoDataOverridesSelector(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	p := tp.NewProducer(ProducerOptions{})
	p.Push(Metadata{"x": 1}, []byte("payload"))
	p.Flush()
	c, _ := tp.NewConsumer(ConsumerOptions{
		NoData:       true,
		DataSelector: func([]byte) bool { return true },
	})
	ev, ok, err := c.Pull()
	if err != nil || !ok || ev.Data != nil {
		t.Fatalf("NoData did not win: %v %v %q", ok, err, ev.Data)
	}
}
