package cluster

import (
	"errors"
	"fmt"
	"testing"

	"taskprov/internal/mofka"
)

// appendRaw appends one raw event through the quorum path with the current
// epoch, returning the append error.
func appendRaw(t *testing.T, c *Cluster, topic string, part int, tag string) error {
	t.Helper()
	epoch, err := c.Epoch(topic, part)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Append(topic, part, "", 0, epoch,
		[][]byte{[]byte(fmt.Sprintf(`{"tag":%q}`, tag))},
		[][]byte{[]byte(tag)})
	return err
}

func tagsOf(t *testing.T, evs []mofka.Event) []string {
	t.Helper()
	out := make([]string, len(evs))
	for i, ev := range evs {
		md, err := ev.ParseMetadata()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = md["tag"].(string)
	}
	return out
}

// TestRestartDiscardsUnackedDivergentTail: a durable leader dies holding an
// unacknowledged tail (its followers faulted the append), the cluster
// acknowledges different events at the same offsets through the new leader,
// and the old leader restarts. Its resurrected tail is the same length as
// the acknowledged log — length comparison alone cannot spot the divergence
// — yet it ranks first and would win donor selection. The restart must
// truncate the log back to the watermark frozen at death, heal from the
// survivors, and serve only acknowledged events.
func TestRestartDiscardsUnackedDivergentTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Brokers: 3, ReplicationFactor: 3, Quorum: 2, DataDir: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	leader := leaderOf(t, c, "t", 0)

	// Batch A replicates everywhere: acked prefix [A].
	if err := appendRaw(t, c, "t", 0, "A"); err != nil {
		t.Fatalf("append A: %v", err)
	}

	// Followers fault the next append: B lands on the leader's durable log
	// only and is never acknowledged.
	for _, pv := range c.Placement() {
		for _, r := range pv.Replicas {
			if r != leader {
				c.NodeBroker(r).SetAppendFault(func(string, int) error { return errors.New("injected wal fault") })
			}
		}
	}
	if err := appendRaw(t, c, "t", 0, "B"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append B: got %v, want ErrUnavailable (quorum failed)", err)
	}
	for i := 0; i < c.Brokers(); i++ {
		if b := c.NodeBroker(i); b != nil {
			b.SetAppendFault(nil)
		}
	}

	// The leader dies with the unacked tail on disk; C is acknowledged at
	// the same offset through the new leader.
	if err := c.KillBroker(leader); err != nil {
		t.Fatal(err)
	}
	if err := appendRaw(t, c, "t", 0, "C"); err != nil {
		t.Fatalf("append C after failover: %v", err)
	}
	want := []string{"A", "C"}

	if err := c.RestartBroker(leader); err != nil {
		t.Fatalf("RestartBroker: %v", err)
	}
	// The preferred leader resumed leading — with the healed log, not the
	// resurrected tail.
	if got := leaderOf(t, c, "t", 0); got != leader {
		t.Fatalf("leader after restart = %d, want preferred %d", got, leader)
	}
	got := tagsOf(t, drainAll(t, c, "t", 1))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("acked stream after restart = %v, want %v (acked event shadowed by unacked tail)", got, want)
	}
	// Every replica converged on the acknowledged prefix — including the
	// restarted node's durable log.
	for _, pv := range c.Placement() {
		for _, r := range pv.Replicas {
			bt, err := c.NodeBroker(r).OpenTopic("t")
			if err != nil {
				t.Fatal(err)
			}
			bp, err := bt.Partition(0)
			if err != nil {
				t.Fatal(err)
			}
			evs, err := bp.ReadFrom(0, 16, true)
			if err != nil {
				t.Fatal(err)
			}
			if rt := tagsOf(t, evs); fmt.Sprint(rt) != fmt.Sprint(want) {
				t.Fatalf("node %d log = %v, want %v", r, rt, want)
			}
		}
	}
	// The truncation is visible in the health timeline.
	var sawTrunc bool
	for _, ev := range c.Events() {
		if ev.Kind == EventLogTruncated && ev.Node == leader {
			sawTrunc = true
		}
	}
	if !sawTrunc {
		t.Fatalf("no %s event for node %d (events: %+v)", EventLogTruncated, leader, c.Events())
	}

	// The discard is durable: a full reopen cannot resurrect B either.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rc, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rc.Close()
	if got := tagsOf(t, drainAll(t, rc, "t", 1)); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("acked stream after reopen = %v, want %v", got, want)
	}
}

// probeFailReplica wraps a replica so its length probe can be made to fail,
// simulating a transient RPC error against a remote member.
type probeFailReplica struct {
	replica
	fail *bool
}

func (p probeFailReplica) length(topic string, part int) (uint64, error) {
	if *p.fail {
		return 0, errors.New("injected probe failure")
	}
	return p.replica.length(topic, part)
}

// TestElectSkipsUnprobeableReplica: a replica whose length probe fails
// during an election must be excluded from leadership and healing for that
// round — treating the failed probe as length 0 used to re-append the whole
// prefix onto data the replica already holds.
func TestElectSkipsUnprobeableReplica(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	ct, err := c.EnsureTopic(mofka.TopicConfig{Name: "t", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	p := pushN(t, ct, n, mofka.ProducerOptions{BatchSize: 5})
	defer p.Close()

	var replicas []int
	for _, pv := range c.Placement() {
		replicas = pv.Replicas
	}
	leader, second, third := replicas[0], replicas[1], replicas[2]

	// The next-preferred replica stops answering length probes, then the
	// leader dies.
	fail := true
	c.mu.Lock()
	c.nodes[second].rep = probeFailReplica{c.nodes[second].rep, &fail}
	c.mu.Unlock()
	if err := c.KillBroker(leader); err != nil {
		t.Fatal(err)
	}

	// Leadership skipped the unprobeable replica.
	if got := leaderOf(t, c, "t", 0); got != third {
		t.Fatalf("leader = %d, want %d (unprobeable %d must be skipped)", got, third, second)
	}
	// And no duplicate healing was applied to it.
	bt, err := c.NodeBroker(second).OpenTopic("t")
	if err != nil {
		t.Fatal(err)
	}
	bp, err := bt.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Length(); got != n {
		t.Fatalf("unprobeable replica holds %d events, want %d (duplicated heal)", got, n)
	}

	// Once the probe recovers, appends flow and the replica stays in
	// lockstep without duplication.
	fail = false
	if err := appendRaw(t, c, "t", 0, "after"); err != nil {
		t.Fatalf("append after probe recovery: %v", err)
	}
	if got := bp.Length(); got != n+1 {
		t.Fatalf("replica holds %d events after recovery, want %d", got, n+1)
	}
	if evs := drainAll(t, c, "t", 1); len(evs) != n+1 {
		t.Fatalf("acked drain %d events, want %d", len(evs), n+1)
	}
}
