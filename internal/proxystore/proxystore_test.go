package proxystore

import (
	"fmt"
	"testing"
)

func TestPublishResolveRoundTrip(t *testing.T) {
	s := New()
	ref, replaced := s.Publish("k-1", 3, 2, 64<<20)
	if ref.Owner != 3 || ref.Incarnation != 2 || ref.Size != 64<<20 || replaced != -1 {
		t.Fatalf("ref = %+v, replaced = %d", ref, replaced)
	}
	got, ok := s.Resolve("k-1")
	if !ok || got != ref {
		t.Fatalf("resolve = %+v, %v", got, ok)
	}
	if s.ResidentBytes() != 64<<20 || s.Len() != 1 {
		t.Fatalf("resident = %d, live = %d", s.ResidentBytes(), s.Len())
	}
	// The manifest region is tiny regardless of the logical payload size.
	target := s.Provider().Target("worker-003")
	if regions, written, _ := target.Stats(); regions != 1 || written > 1024 {
		t.Fatalf("manifest footprint: %d regions, %d bytes", regions, written)
	}
	if _, ok := s.Resolve("absent"); ok {
		t.Fatal("resolved an absent key")
	}
	st := s.Stats()
	if st.Publishes != 1 || st.Resolves != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRefcountDrainDestroysBlob(t *testing.T) {
	s := New()
	s.Publish("k-1", 0, 0, 1<<20)
	s.Retain("k-1", 3)
	for i := 0; i < 2; i++ {
		if freed, _ := s.Release("k-1"); freed {
			t.Fatalf("freed after %d releases", i+1)
		}
	}
	freed, size := s.Release("k-1")
	if !freed || size != 1<<20 {
		t.Fatalf("final release: freed=%v size=%d", freed, size)
	}
	if s.ResidentBytes() != 0 || s.Len() != 0 {
		t.Fatalf("resident = %d, live = %d", s.ResidentBytes(), s.Len())
	}
	// The backing region is gone too.
	if regions, _, _ := s.Provider().Target("worker-000").Stats(); regions != 0 {
		t.Fatalf("leaked %d regions", regions)
	}
}

func TestReleaseNeverNegative(t *testing.T) {
	s := New()
	s.Publish("k-1", 0, 0, 100)
	// More releases than retains: the count clamps at zero and the blob is
	// destroyed exactly once; further releases are no-ops.
	if freed, _ := s.Release("k-1"); !freed {
		t.Fatal("zero-ref release did not free")
	}
	if freed, _ := s.Release("k-1"); freed {
		t.Fatal("released an absent key")
	}
	if s.Refs("k-1") != 0 {
		t.Fatalf("refs = %d", s.Refs("k-1"))
	}
	if st := s.Stats(); st.Resident != 0 {
		t.Fatalf("resident went negative or stale: %+v", st)
	}
}

func TestRetainAbsentIsNoop(t *testing.T) {
	s := New()
	s.Retain("ghost", 5)
	if s.Len() != 0 || s.Refs("ghost") != 0 {
		t.Fatal("retain materialized a blob")
	}
}

func TestRepublishReplacesBlob(t *testing.T) {
	s := New()
	s.Publish("k-1", 0, 0, 100)
	s.Retain("k-1", 2)
	ref, replaced := s.Publish("k-1", 1, 3, 200) // recomputed on another worker
	if ref.Owner != 1 || ref.Size != 200 {
		t.Fatalf("ref = %+v", ref)
	}
	if replaced != 100 {
		t.Fatalf("replaced = %d, want the displaced blob's size", replaced)
	}
	if s.ResidentBytes() != 200 {
		t.Fatalf("resident = %d", s.ResidentBytes())
	}
	// The old blob's references do not carry over.
	if s.Refs("k-1") != 0 {
		t.Fatalf("refs = %d", s.Refs("k-1"))
	}
	got, ok := s.Resolve("k-1")
	if !ok || got.Owner != 1 || got.Incarnation != 3 {
		t.Fatalf("resolve = %+v, %v", got, ok)
	}
}

func TestReclaimWorker(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		s.Publish(fmt.Sprintf("k-%d", i), i%2, 0, 100)
		s.Retain(fmt.Sprintf("k-%d", i), 1)
	}
	refs, bytes := s.ReclaimWorker(1)
	if len(refs) != 3 || bytes != 300 {
		t.Fatalf("reclaimed %v (%d bytes)", refs, bytes)
	}
	for i, r := range refs {
		if r.Owner != 1 || r.Size != 100 {
			t.Fatalf("reclaimed ref = %+v", r)
		}
		if i > 0 && refs[i-1].Key >= r.Key {
			t.Fatalf("reclaim refs not sorted by key: %v", refs)
		}
	}
	if s.Len() != 3 || s.ResidentBytes() != 300 {
		t.Fatalf("live = %d, resident = %d", s.Len(), s.ResidentBytes())
	}
	// Worker 1's blobs now miss; worker 0's still resolve.
	if _, ok := s.Resolve("k-1"); ok {
		t.Fatal("reclaimed blob resolved")
	}
	if _, ok := s.Resolve("k-0"); !ok {
		t.Fatal("surviving blob did not resolve")
	}
	if st := s.Stats(); st.Reclaims != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Reclaiming again is a no-op.
	if refs, _ := s.ReclaimWorker(1); len(refs) != 0 {
		t.Fatalf("double reclaim returned %v", refs)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"zz", "aa", "mm"} {
		s.Publish(k, 0, 0, 1)
	}
	got := s.Keys()
	if len(got) != 3 || got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Fatalf("keys = %v", got)
	}
}
