package darshan

import (
	"bytes"
	"strings"
	"testing"

	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

func TestHeatmapAccumulates(t *testing.T) {
	h := newHeatmap(10) // 10 bins of 0.1s
	h.add(0.05, 100, false)
	h.add(0.15, 200, false)
	h.add(0.15, 50, true)
	if h.ReadBytes[0] != 100 || h.ReadBytes[1] != 200 || h.WriteBytes[1] != 50 {
		t.Fatalf("bins = %v / %v", h.ReadBytes, h.WriteBytes)
	}
	r, w := h.TotalBytes()
	if r != 300 || w != 50 {
		t.Fatalf("totals = %d, %d", r, w)
	}
}

func TestHeatmapFoldsOnOverflow(t *testing.T) {
	h := newHeatmap(4) // covers 0.4s initially
	h.add(0.05, 10, false)
	h.add(0.15, 20, false)
	h.add(0.35, 40, false)
	// Beyond the last bin: width doubles (0.2s bins, covers 0.8s).
	h.add(0.75, 80, false)
	if h.BinSeconds != 0.2 {
		t.Fatalf("bin width = %v", h.BinSeconds)
	}
	// Old bins folded pairwise: [10+20, 0+40, 0, 0] then 80 at bin 3.
	want := []int64{30, 40, 0, 80}
	for i, v := range want {
		if h.ReadBytes[i] != v {
			t.Fatalf("folded bins = %v, want %v", h.ReadBytes, want)
		}
	}
	r, _ := h.TotalBytes()
	if r != 150 {
		t.Fatalf("total after fold = %d", r)
	}
	if h.Span() != 0.8 {
		t.Fatalf("span = %v", h.Span())
	}
}

func TestHeatmapMultipleFolds(t *testing.T) {
	h := newHeatmap(4)
	h.add(0.05, 1, false)
	h.add(100, 2, false) // forces many folds
	r, _ := h.TotalBytes()
	if r != 3 {
		t.Fatalf("bytes lost across folds: %d", r)
	}
	if h.Span() < 100 {
		t.Fatalf("span = %v", h.Span())
	}
}

func TestHeatmapMerge(t *testing.T) {
	a := newHeatmap(4)
	a.add(0.05, 10, false)
	b := newHeatmap(4)
	b.add(0.05, 5, false)
	b.add(0.7, 20, true) // b folds to 0.2s bins
	m := MergeHeatmaps([]*Heatmap{a, b, nil})
	if m.BinSeconds != 0.2 {
		t.Fatalf("merged width = %v", m.BinSeconds)
	}
	r, w := m.TotalBytes()
	if r != 15 || w != 20 {
		t.Fatalf("merged totals = %d, %d", r, w)
	}
	// Merge must not mutate inputs.
	if a.BinSeconds != 0.1 {
		t.Fatal("merge mutated input heatmap")
	}
}

func TestHeatmapRuntimeIntegrationAndRoundTrip(t *testing.T) {
	r := NewRuntime(Config{JobID: "j", Hostname: "n0", DXTEnabled: true, HeatmapBins: 8})
	r.ReadEvent(op("/f", 1, 0, 4096, 0.0, 0.05))
	r.WriteEvent(op("/f", 1, 0, 1024, 0.2, 0.25))
	log := r.Snapshot()
	if log.Heatmap == nil {
		t.Fatal("snapshot lost heatmap")
	}
	rd, wr := log.Heatmap.TotalBytes()
	if rd != 4096 || wr != 1024 {
		t.Fatalf("heatmap totals = %d, %d", rd, wr)
	}
	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Heatmap == nil || got.Heatmap.BinSeconds != log.Heatmap.BinSeconds {
		t.Fatalf("heatmap round trip lost: %+v", got.Heatmap)
	}
	gr, gw := got.Heatmap.TotalBytes()
	if gr != rd || gw != wr {
		t.Fatalf("round trip totals = %d, %d", gr, gw)
	}
}

func TestHeatmapDisabled(t *testing.T) {
	r := NewRuntime(Config{JobID: "j", HeatmapDisabled: true})
	r.ReadEvent(op("/f", 1, 0, 10, 0, 1))
	log := r.Snapshot()
	if log.Heatmap != nil {
		t.Fatal("disabled heatmap present")
	}
	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil || got.Heatmap != nil {
		t.Fatalf("round trip: %v, %+v", err, got.Heatmap)
	}
}

func TestHeatmapSurvivesRecordTableOverflow(t *testing.T) {
	// The heatmap's purpose: complete byte totals even when per-file
	// records are dropped.
	c := Config{JobID: "j", MaxFileRecords: 1}
	r := NewRuntime(c)
	r.ReadEvent(op("/a", 1, 0, 100, 0, 0.1))
	r.ReadEvent(op("/b", 1, 0, 200, 0.1, 0.2)) // record dropped
	log := r.Snapshot()
	if log.TotalOps() != 1 {
		t.Fatalf("posix ops = %d (record table should have dropped one)", log.TotalOps())
	}
	rd, _ := log.Heatmap.TotalBytes()
	if rd != 300 {
		t.Fatalf("heatmap read bytes = %d, want 300 (complete)", rd)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := newHeatmap(8)
	h.add(0.05, 1000, false)
	out := h.Render()
	if !strings.Contains(out, "R |") || !strings.Contains(out, "W |") {
		t.Fatalf("render = %q", out)
	}
	if (&Heatmap{}).Render() == "" || strings.Contains((*Heatmap)(nil).Render(), "R |") {
		t.Fatal("degenerate renders wrong")
	}
}

var _ = posixio.OpRecord{}
var _ = sim.Second

func TestDXTAdaptiveSampling(t *testing.T) {
	c := Config{JobID: "j", DXTEnabled: true, DXTBufferSegments: 100, DXTAdaptiveSampling: true}
	r := NewRuntime(c)
	for i := 0; i < 400; i++ {
		r.ReadEvent(op("/f", 1, int64(i)*100, 100, float64(i), float64(i)+0.5))
	}
	log := r.Snapshot()
	rec, _ := log.Record("/f")
	if !r.DXTSamplingActive() {
		t.Fatal("adaptive sampling never engaged")
	}
	// Non-adaptive would keep exactly the first 100; adaptive keeps the
	// first 75 densely plus a 1-in-4 sample of the rest, covering later
	// timestamps.
	last := rec.DXT[len(rec.DXT)-1]
	if last.Start <= 100 {
		t.Fatalf("adaptive trace ends at %.0fs; tail not covered", last.Start)
	}
	if len(rec.DXT) > 100 {
		t.Fatalf("budget exceeded: %d segments", len(rec.DXT))
	}
	// The fixed-budget variant stops early.
	c.DXTAdaptiveSampling = false
	r2 := NewRuntime(c)
	for i := 0; i < 400; i++ {
		r2.ReadEvent(op("/f", 1, int64(i)*100, 100, float64(i), float64(i)+0.5))
	}
	rec2, _ := r2.Snapshot().Record("/f")
	if tail := rec2.DXT[len(rec2.DXT)-1]; tail.Start > 100 {
		t.Fatalf("fixed-budget trace unexpectedly covers %.0fs", tail.Start)
	}
	// Both flag partiality.
	if !r.Snapshot().Job.Partial || !r2.Snapshot().Job.Partial {
		t.Fatal("partial flag missing")
	}
}
