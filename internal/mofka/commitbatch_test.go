package mofka

import "testing"

func TestCommitBatch(t *testing.T) {
	b, tp := newTopic(t, "t", 3)
	p := tp.NewProducer(ProducerOptions{})
	for i := 0; i < 12; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	p.Flush()

	c1, _ := tp.NewConsumer(ConsumerOptions{Name: "monitor"})
	evs, err := c1.PullBatch(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 9 {
		t.Fatalf("pulled %d events, want 9", len(evs))
	}
	if err := c1.CommitBatch(evs); err != nil {
		t.Fatal(err)
	}
	// One cursor per partition, each at the highest acked offset + 1.
	want := map[int]uint64{}
	for _, ev := range evs {
		if next := ev.ID + 1; next > want[ev.Partition] {
			want[ev.Partition] = next
		}
	}
	if len(want) != 3 {
		t.Fatalf("batch covered %d partitions, want 3", len(want))
	}
	for part, next := range want {
		if got := b.LoadCursor("monitor", "t", part); got != next {
			t.Fatalf("cursor[%d] = %d, want %d", part, got, next)
		}
	}

	// A resumed consumer sees exactly the uncommitted remainder.
	c2, _ := tp.NewConsumer(ConsumerOptions{Name: "monitor", FromCommitted: true})
	rest, _ := c2.Drain()
	if len(rest) != 12-9 {
		t.Fatalf("resumed consumer got %d events, want 3", len(rest))
	}
}

func TestCommitBatchEmptyAndAnonymous(t *testing.T) {
	_, tp := newTopic(t, "t", 1)
	named, _ := tp.NewConsumer(ConsumerOptions{Name: "n"})
	if err := named.CommitBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	anon, _ := tp.NewConsumer(ConsumerOptions{})
	if err := anon.CommitBatch([]Event{{}}); err == nil {
		t.Fatal("anonymous CommitBatch succeeded")
	}
}

func TestBrokerIsClosed(t *testing.T) {
	b := NewStandaloneBroker()
	if b.IsClosed() {
		t.Fatal("fresh broker reports closed")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !b.IsClosed() {
		t.Fatal("closed broker reports open")
	}
}
