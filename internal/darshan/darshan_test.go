package darshan

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"taskprov/internal/pfs"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

func cfg() Config {
	return Config{
		JobID: "job-1", Rank: 0, Hostname: "nid00001", Exe: "workflow.py",
		DXTEnabled: true,
	}
}

func op(path string, tid uint64, off, n int64, start, end float64) posixio.OpRecord {
	return posixio.OpRecord{
		Path: path, TID: tid, Offset: off, Bytes: n,
		Start: sim.Seconds(start), End: sim.Seconds(end),
	}
}

func TestCountersAccumulate(t *testing.T) {
	r := NewRuntime(cfg())
	r.OpenEvent(op("/f", 1, 0, 0, 0.0, 0.001), true)
	r.ReadEvent(op("/f", 1, 0, 4096, 0.01, 0.02))
	r.ReadEvent(op("/f", 1, 4096, 4096, 0.02, 0.05))
	r.WriteEvent(op("/f", 1, 0, 100, 0.06, 0.07))
	r.CloseEvent(op("/f", 1, 0, 0, 0.08, 0.08))

	log := r.Snapshot()
	rec, ok := log.Record("/f")
	if !ok {
		t.Fatal("record missing")
	}
	c := rec.Counters
	if c.Opens != 1 || c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.BytesRead != 8192 || c.BytesWritten != 100 {
		t.Fatalf("bytes = %d read, %d written", c.BytesRead, c.BytesWritten)
	}
	if c.MaxByteRead != 8192 || c.MaxByteWritten != 100 {
		t.Fatalf("max bytes = %d, %d", c.MaxByteRead, c.MaxByteWritten)
	}
	if got := c.ReadTime; got < 0.039 || got > 0.041 {
		t.Fatalf("ReadTime = %v", got)
	}
	if c.ReadStart != 0.01 || c.ReadEnd != 0.05 {
		t.Fatalf("read window = [%v, %v]", c.ReadStart, c.ReadEnd)
	}
	if c.CloseEnd != 0.08 {
		t.Fatalf("CloseEnd = %v", c.CloseEnd)
	}
}

func TestSizeHistogram(t *testing.T) {
	r := NewRuntime(cfg())
	sizes := []int64{50, 500, 5 << 10, 50 << 10, 500 << 10, 2 << 20, 8 << 20, 50 << 20, 500 << 20, 2 << 30}
	for i, s := range sizes {
		r.ReadEvent(op("/f", 1, 0, s, float64(i), float64(i)+0.1))
	}
	log := r.Snapshot()
	rec, _ := log.Record("/f")
	for i := 0; i < NumSizeBuckets; i++ {
		if rec.Counters.SizeHistRead[i] != 1 {
			t.Fatalf("bucket %d (%s) = %d, want 1", i, SizeBucketLabel(i), rec.Counters.SizeHistRead[i])
		}
	}
}

func TestSizeBucketBoundaries(t *testing.T) {
	cases := map[int64]int{0: 0, 99: 0, 100: 1, 1023: 1, 1024: 2, 4 << 20: 6, (1 << 30) + 5: 9}
	for n, want := range cases {
		if got := SizeBucket(n); got != want {
			t.Errorf("SizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDXTSegmentsCarryTIDs(t *testing.T) {
	r := NewRuntime(cfg())
	r.ReadEvent(op("/f", 42, 0, 4096, 1.0, 1.1))
	r.WriteEvent(op("/f", 43, 100, 200, 2.0, 2.2))
	log := r.Snapshot()
	rec, _ := log.Record("/f")
	if len(rec.DXT) != 2 {
		t.Fatalf("segments = %d", len(rec.DXT))
	}
	rd, wr := rec.DXT[0], rec.DXT[1]
	if rd.Op != OpRead || rd.TID != 42 || rd.Length != 4096 || rd.Start != 1.0 {
		t.Fatalf("read segment = %+v", rd)
	}
	if wr.Op != OpWrite || wr.TID != 43 || wr.Offset != 100 {
		t.Fatalf("write segment = %+v", wr)
	}
}

func TestDXTDisabled(t *testing.T) {
	c := cfg()
	c.DXTEnabled = false
	r := NewRuntime(c)
	r.ReadEvent(op("/f", 1, 0, 10, 0, 1))
	log := r.Snapshot()
	rec, _ := log.Record("/f")
	if len(rec.DXT) != 0 {
		t.Fatal("DXT recorded while disabled")
	}
	if rec.Counters.Reads != 1 {
		t.Fatal("POSIX counters must still work with DXT off")
	}
}

func TestDXTBufferLimitTruncates(t *testing.T) {
	c := cfg()
	c.DXTBufferSegments = 10
	r := NewRuntime(c)
	for i := 0; i < 25; i++ {
		r.ReadEvent(op("/f", 1, int64(i)*100, 100, float64(i), float64(i)+0.5))
	}
	if r.DXTDropped() != 15 {
		t.Fatalf("dropped = %d, want 15", r.DXTDropped())
	}
	log := r.Snapshot()
	rec, _ := log.Record("/f")
	if len(rec.DXT) != 10 {
		t.Fatalf("kept segments = %d, want 10", len(rec.DXT))
	}
	if rec.Counters.Reads != 25 {
		t.Fatalf("POSIX counters must be unaffected by DXT truncation: %d", rec.Counters.Reads)
	}
	if !log.Job.Partial || log.Job.DXTDropped != 15 {
		t.Fatalf("header = %+v, want Partial with 15 dropped", log.Job)
	}
}

func TestSnapshotSortedAndIsolated(t *testing.T) {
	r := NewRuntime(cfg())
	r.ReadEvent(op("/z", 1, 0, 10, 0, 1))
	r.ReadEvent(op("/a", 1, 0, 10, 1, 2))
	log := r.Snapshot()
	if len(log.Records) != 2 || log.Records[0].Path != "/a" || log.Records[1].Path != "/z" {
		t.Fatalf("records = %+v", log.Records)
	}
	// Further events must not mutate the snapshot.
	r.ReadEvent(op("/a", 1, 0, 10, 2, 3))
	if log.Records[0].Counters.Reads != 1 {
		t.Fatal("snapshot mutated by later events")
	}
}

func TestTotalsAndTotalOps(t *testing.T) {
	r := NewRuntime(cfg())
	r.OpenEvent(op("/a", 1, 0, 0, 0, 0.001), false)
	r.ReadEvent(op("/a", 1, 0, 10, 0, 1))
	r.WriteEvent(op("/b", 2, 0, 10, 0, 1))
	o, rd, wr := r.Totals()
	if o != 1 || rd != 1 || wr != 1 {
		t.Fatalf("totals = %d %d %d", o, rd, wr)
	}
	if got := r.Snapshot().TotalOps(); got != 2 {
		t.Fatalf("TotalOps = %d", got)
	}
}

func TestJobWindowTracksClock(t *testing.T) {
	r := NewRuntime(cfg())
	r.ReadEvent(op("/f", 1, 0, 10, 5.0, 6.0))
	r.ReadEvent(op("/f", 1, 0, 10, 2.0, 3.0))
	log := r.Snapshot()
	if log.Job.StartTime != 2.0 || log.Job.EndTime != 6.0 {
		t.Fatalf("job window = [%v, %v]", log.Job.StartTime, log.Job.EndTime)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := NewRuntime(cfg())
	r.OpenEvent(op("/data/img-001.png", 7, 0, 0, 0.1, 0.101), false)
	for i := 0; i < 20; i++ {
		r.ReadEvent(op("/data/img-001.png", 7, int64(i)*4<<20, 4<<20, float64(i), float64(i)+0.3))
	}
	r.WriteEvent(op("/out/result.png", 8, 0, 80<<20, 25, 27))
	r.CloseEvent(op("/data/img-001.png", 7, 0, 0, 30, 30))

	orig := r.Snapshot()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != orig.Job {
		t.Fatalf("job header mismatch:\n%+v\n%+v", got.Job, orig.Job)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d vs %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		g, o := got.Records[i], orig.Records[i]
		if g.Path != o.Path || g.Counters != o.Counters {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, g, o)
		}
		if len(g.DXT) != len(o.DXT) {
			t.Fatalf("record %d DXT %d vs %d", i, len(g.DXT), len(o.DXT))
		}
		for j := range g.DXT {
			if g.DXT[j] != o.DXT[j] {
				t.Fatalf("segment %d/%d mismatch: %+v vs %+v", i, j, g.DXT[j], o.DXT[j])
			}
		}
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("GARBAGE FILE"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadLog(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Right magic, wrong version.
	bad := append([]byte("DSHN"), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadLog(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String wrong")
	}
}

func TestEndToEndWithPosixio(t *testing.T) {
	// Integration: darshan as the tracer behind the POSIX layer.
	k := sim.NewKernel(1)
	pfsCfg := pfs.Lustre()
	pfsCfg.InterferenceLoad = 0
	fs := posixio.NewFS(pfs.New(k, pfsCfg))
	rt := NewRuntime(cfg())
	k.Go(func(p *sim.Proc) {
		f, err := fs.Open(p, rt, 11, "/lus/grand/file", posixio.WRONLY|posixio.CREATE)
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(p, 1<<20)
		f.Write(p, 1<<20)
		f.Close(p)
		g, err := fs.Open(p, rt, 12, "/lus/grand/file", posixio.RDONLY)
		if err != nil {
			t.Error(err)
			return
		}
		g.Read(p, 2<<20)
		g.Close(p)
	})
	k.Run()
	log := rt.Snapshot()
	rec, ok := log.Record("/lus/grand/file")
	if !ok {
		t.Fatal("no record for file")
	}
	if rec.Counters.Writes != 2 || rec.Counters.Reads != 1 {
		t.Fatalf("counters = %+v", rec.Counters)
	}
	if len(rec.DXT) != 3 {
		t.Fatalf("DXT = %d segments", len(rec.DXT))
	}
	tids := map[uint64]bool{}
	for _, s := range rec.DXT {
		tids[s.TID] = true
	}
	if !tids[11] || !tids[12] {
		t.Fatalf("TIDs = %v", tids)
	}
}

func TestFileRecordTableLimit(t *testing.T) {
	c := cfg()
	c.MaxFileRecords = 3
	r := NewRuntime(c)
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/f%d", i)
		r.OpenEvent(op(path, 1, 0, 0, float64(i), float64(i)+0.1), false)
		r.ReadEvent(op(path, 1, 0, 100, float64(i), float64(i)+0.2))
	}
	log := r.Snapshot()
	if len(log.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(log.Records))
	}
	if r.RecordsDropped() != 10 { // 5 extra files x (open+read)
		t.Fatalf("dropped = %d, want 10", r.RecordsDropped())
	}
	if !log.Job.Partial || log.Job.RecordsDropped != 10 {
		t.Fatalf("header = %+v", log.Job)
	}
	// Tracked files keep full fidelity.
	if rec, ok := log.Record("/f0"); !ok || rec.Counters.Reads != 1 {
		t.Fatalf("tracked record wrong: %+v", rec)
	}
}

func TestExistingRecordStillTrackedWhenTableFull(t *testing.T) {
	c := cfg()
	c.MaxFileRecords = 1
	r := NewRuntime(c)
	r.ReadEvent(op("/keep", 1, 0, 100, 0, 1))
	r.ReadEvent(op("/drop", 1, 0, 100, 1, 2))
	r.ReadEvent(op("/keep", 1, 100, 100, 2, 3))
	log := r.Snapshot()
	rec, _ := log.Record("/keep")
	if rec.Counters.Reads != 2 {
		t.Fatalf("tracked file reads = %d, want 2", rec.Counters.Reads)
	}
}

func TestSummarize(t *testing.T) {
	mk := func(rank int, host string) *Log {
		r := NewRuntime(Config{JobID: "job-9", Rank: rank, Hostname: host, DXTEnabled: true})
		r.OpenEvent(op("/shared.dat", 1, 0, 0, 0.5, 0.51), false)
		r.ReadEvent(op("/shared.dat", 1, 0, 4<<20, 1, 1.5))
		r.WriteEvent(op(fmt.Sprintf("/out-%d", rank), 1, 0, 1<<20, 2, 2.2))
		return r.Snapshot()
	}
	logs := []*Log{mk(0, "n0"), mk(1, "n1"), mk(2, "n0")}
	s := Summarize(logs, 2)
	if s.JobID != "job-9" || s.Processes != 3 || s.Files != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Reads != 3 || s.Writes != 3 || s.Opens != 3 {
		t.Fatalf("ops = %+v", s)
	}
	if s.BytesRead != 3*4<<20 || s.BytesWritten != 3<<20 {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.Start != 0.5 || s.End != 2.2 {
		t.Fatalf("window = [%v, %v]", s.Start, s.End)
	}
	// TopFiles bounded and sorted by bytes: /shared.dat (12MB) first.
	if len(s.TopFiles) != 2 || s.TopFiles[0].Path != "/shared.dat" {
		t.Fatalf("top files = %+v", s.TopFiles)
	}
	if s.TopFiles[0].Processes != 3 {
		t.Fatalf("shared file seen by %d processes", s.TopFiles[0].Processes)
	}
	if s.Partial {
		t.Fatal("complete logs flagged partial")
	}
	out := s.Render()
	for _, want := range []string{"job-9", "3 processes", "top files", "/shared.dat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizePartialPropagates(t *testing.T) {
	c := cfg()
	c.DXTBufferSegments = 1
	r := NewRuntime(c)
	r.ReadEvent(op("/f", 1, 0, 10, 0, 1))
	r.ReadEvent(op("/f", 1, 10, 10, 1, 2))
	s := Summarize([]*Log{r.Snapshot()}, 0)
	if !s.Partial || s.DXTDropped != 1 {
		t.Fatalf("partial propagation: %+v", s)
	}
	if !strings.Contains(s.Render(), "PARTIAL") {
		t.Fatal("render missing PARTIAL warning")
	}
}
