package perfrecup

import (
	"taskprov/internal/core"
	"taskprov/internal/live"
)

// LiveReplay feeds a completed run's artifacts through the live-monitoring
// aggregator (internal/live), post-mortem. It is both an analysis surface —
// live.Summary's group quantiles, state occupancy, and per-worker figures as
// batch views — and the reference side of the aggregate-equivalence
// invariant: a live Monitor's final Summary over a run must equal
// LiveReplay's over the same artifacts (see DESIGN.md).
func LiveReplay(art *core.RunArtifacts, opts live.AggregatorOptions) (live.Summary, error) {
	agg := live.NewAggregator(opts)
	if err := live.ReplayBroker(art.Broker, agg); err != nil {
		return live.Summary{}, err
	}
	for _, l := range art.DarshanLogs {
		agg.IngestDarshanLog(l)
	}
	slots := art.Meta.Job.Nodes * art.Meta.Job.WorkersPerNode * art.Meta.Job.ThreadsPerWorker
	agg.SetMeta(art.Meta.Workflow, art.Meta.Seed, slots)
	agg.SetWall(art.Meta.WallSeconds)
	return agg.Snapshot(), nil
}
