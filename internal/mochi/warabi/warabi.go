// Package warabi reimplements the interface shape of Mochi's Warabi
// microservice: a blob store organized as targets holding fixed regions of
// raw bytes. Mofka stores event data payloads in Warabi regions while event
// metadata lives in Yokan.
package warabi

import (
	"errors"
	"fmt"
	"sync"
)

// RegionID identifies a region within a target.
type RegionID uint64

// ErrNoRegion is returned for operations on unknown or destroyed regions.
var ErrNoRegion = errors.New("warabi: no such region")

// ErrOutOfBounds is returned when an access exceeds a region's size.
var ErrOutOfBounds = errors.New("warabi: access out of region bounds")

// Target is one blob storage target. All methods are safe for concurrent
// use.
type Target struct {
	name string

	mu      sync.RWMutex
	regions map[RegionID]*region
	nextID  RegionID

	bytesWritten int64
	bytesRead    int64
}

type region struct {
	data      []byte
	persisted bool
}

// NewTarget creates an empty target.
func NewTarget(name string) *Target {
	return &Target{name: name, regions: make(map[RegionID]*region)}
}

// Name returns the target's diagnostic name.
func (t *Target) Name() string { return t.name }

// Create allocates a region of the given size and returns its ID.
func (t *Target) Create(size int64) RegionID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.regions[id] = &region{data: make([]byte, size)}
	return id
}

// CreateWrite allocates a region exactly fitting data, writes it, and marks
// it persisted. This is the fast path Mofka uses for event batches.
func (t *Target) CreateWrite(data []byte) RegionID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.regions[id] = &region{data: append([]byte(nil), data...), persisted: true}
	t.bytesWritten += int64(len(data))
	return id
}

// Write copies data into the region at offset.
func (t *Target) Write(id RegionID, offset int64, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.regions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(r.data)) {
		return fmt.Errorf("%w: write [%d,%d) in region of %d", ErrOutOfBounds, offset, offset+int64(len(data)), len(r.data))
	}
	copy(r.data[offset:], data)
	t.bytesWritten += int64(len(data))
	return nil
}

// Read returns size bytes of the region starting at offset.
func (t *Target) Read(id RegionID, offset, size int64) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.regions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	if offset < 0 || offset+size > int64(len(r.data)) {
		return nil, fmt.Errorf("%w: read [%d,%d) in region of %d", ErrOutOfBounds, offset, offset+size, len(r.data))
	}
	t.bytesRead += size
	return append([]byte(nil), r.data[offset:offset+size]...), nil
}

// ReadAll returns the region's full contents.
func (t *Target) ReadAll(id RegionID) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.regions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	t.bytesRead += int64(len(r.data))
	return append([]byte(nil), r.data...), nil
}

// Persist marks the region durable (a no-op flush in this in-memory model,
// but tracked so tests can assert the producer's flush discipline).
func (t *Target) Persist(id RegionID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.regions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	r.persisted = true
	return nil
}

// Persisted reports whether the region has been persisted.
func (t *Target) Persisted(id RegionID) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.regions[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	return r.persisted, nil
}

// Destroy releases the region.
func (t *Target) Destroy(id RegionID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.regions[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	delete(t.regions, id)
	return nil
}

// Size returns a region's size in bytes.
func (t *Target) Size(id RegionID) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.regions[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	return int64(len(r.data)), nil
}

// Stats reports the number of live regions and cumulative bytes moved.
func (t *Target) Stats() (regions int, written, read int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions), t.bytesWritten, t.bytesRead
}

// Provider manages a set of named targets, like a Warabi provider.
type Provider struct {
	mu      sync.Mutex
	targets map[string]*Target
}

// NewProvider creates an empty provider.
func NewProvider() *Provider { return &Provider{targets: make(map[string]*Target)} }

// Target returns the named target, creating it on first use.
func (p *Provider) Target(name string) *Target {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.targets[name]
	if !ok {
		t = NewTarget(name)
		p.targets[name] = t
	}
	return t
}

// Names lists existing targets.
func (p *Provider) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for n := range p.targets {
		out = append(out, n)
	}
	return out
}
