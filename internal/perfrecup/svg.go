package perfrecup

import (
	"fmt"
	"math"
	"strings"

	"taskprov/internal/core"
)

// The SVG renderers make PERFRECUP a "visualization engine" in the paper's
// sense: each figure can be emitted as a standalone SVG document alongside
// its textual form. Only the stdlib is used; the output is deliberately
// simple, well-formed XML.

// svgCanvas accumulates SVG elements.
type svgCanvas struct {
	w, h float64
	b    strings.Builder
}

func newCanvas(w, h float64) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	c.rect(0, 0, w, h, "#ffffff", 0)
	return c
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func (c *svgCanvas) rect(x, y, w, h float64, fill string, opacity float64) {
	if opacity <= 0 || opacity > 1 {
		opacity = 1
	}
	fmt.Fprintf(&c.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, w, h, fill, opacity)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *svgCanvas) circle(x, y, r float64, fill string, opacity float64) {
	if opacity <= 0 || opacity > 1 {
		opacity = 1
	}
	fmt.Fprintf(&c.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, r, fill, opacity)
}

func (c *svgCanvas) text(x, y float64, size float64, s string) {
	fmt.Fprintf(&c.b, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="%.0f">%s</text>`+"\n",
		x, y, size, esc(s))
}

func (c *svgCanvas) String() string { return c.b.String() + "</svg>\n" }

// phase colors (I/O, comm, compute, total), colorblind-safe-ish.
var phaseColors = [4]string{"#d95f02", "#7570b3", "#1b9e77", "#666666"}

// PhaseBarsSVG renders Fig. 3: per workflow, four normalized bars (I/O,
// communication, computation, total) with ±1σ error bars.
func PhaseBarsSVG(stats []PhaseStats) string {
	const W, H, mL, mB, mT = 720.0, 360.0, 60.0, 60.0, 40.0
	c := newCanvas(W, H)
	c.text(mL, 24, 16, "Relative time per phase (mean ± std, normalized per run)")
	plotW := W - mL - 20
	plotH := H - mB - mT
	y0 := H - mB
	// Axes.
	c.line(mL, mT, mL, y0, "#000000", 1)
	c.line(mL, y0, mL+plotW, y0, "#000000", 1)
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		y := y0 - f*plotH
		c.line(mL-4, y, mL, y, "#000000", 1)
		c.text(14, y+4, 11, fmt.Sprintf("%.2f", f))
	}
	if len(stats) == 0 {
		return c.String()
	}
	group := plotW / float64(len(stats))
	barW := group / 6
	labels := [4]string{"io", "comm", "compute", "total"}
	for i, s := range stats {
		gx := mL + float64(i)*group
		vals := [4]float64{s.NormIO, s.NormComm, s.NormCompute, s.NormTotal}
		stds := [4]float64{s.NormIOStd, s.NormCommStd, s.NormComputeStd, s.NormTotalStd}
		for j := 0; j < 4; j++ {
			v, sd := vals[j], stds[j]
			if math.IsNaN(v) {
				v = 0
			}
			x := gx + barW*(0.8+float64(j)*1.1)
			h := v * plotH
			c.rect(x, y0-h, barW, h, phaseColors[j], 0.9)
			// Error bar.
			if sd > 0 {
				cx := x + barW/2
				c.line(cx, y0-(v+sd)*plotH, cx, y0-math.Max(0, v-sd)*plotH, "#000000", 1.2)
				c.line(cx-3, y0-(v+sd)*plotH, cx+3, y0-(v+sd)*plotH, "#000000", 1.2)
				c.line(cx-3, y0-math.Max(0, v-sd)*plotH, cx+3, y0-math.Max(0, v-sd)*plotH, "#000000", 1.2)
			}
		}
		c.text(gx+group/2-30, y0+18, 12, s.Workflow)
		c.text(gx+group/2-30, y0+34, 10, fmt.Sprintf("%d runs", s.Runs))
	}
	// Legend.
	lx := mL
	for j, lab := range labels {
		c.rect(lx, 30, 10, 10, phaseColors[j], 0.9)
		c.text(lx+14, 39, 11, lab)
		lx += 80
	}
	return c.String()
}

// WarningHistogramSVG renders Fig. 7: warning counts per time bin, one band
// per warning kind.
func WarningHistogramSVG(h map[string]Histogram, binSeconds float64) string {
	const W, bandH, mL = 720.0, 140.0, 60.0
	kinds := make([]string, 0, len(h))
	for k := range h {
		kinds = append(kinds, k)
	}
	sortStrings(kinds)
	H := 40 + bandH*float64(len(kinds)) + 30
	c := newCanvas(W, H)
	c.text(mL, 24, 16, "Warning distribution over time")
	colors := []string{"#e41a1c", "#377eb8", "#4daf4a", "#984ea3"}
	for bi, kind := range kinds {
		hist := h[kind]
		top := 40 + bandH*float64(bi)
		y0 := top + bandH - 30
		maxC := 1
		for _, n := range hist.Counts {
			if n > maxC {
				maxC = n
			}
		}
		plotW := W - mL - 20
		bw := plotW / float64(len(hist.Counts))
		for i, n := range hist.Counts {
			if n == 0 {
				continue
			}
			bh := float64(n) / float64(maxC) * (bandH - 50)
			c.rect(mL+float64(i)*bw, y0-bh, bw*0.9, bh, colors[bi%len(colors)], 0.85)
		}
		c.line(mL, y0, mL+plotW, y0, "#000000", 1)
		c.text(mL, top+2, 12, fmt.Sprintf("%s (total %d, bins of %.0fs)", kind, hist.Total(), binSeconds))
		c.text(mL+plotW-60, y0+16, 10, fmt.Sprintf("%.0fs", float64(len(hist.Counts))*binSeconds))
		c.text(mL, y0+16, 10, "0s")
	}
	return c.String()
}

// IOTimelineSVG renders Fig. 4: one horizontal band per thread, red
// segments for reads and blue for writes, opacity scaled by access size.
func IOTimelineSVG(art *core.RunArtifacts) (string, error) {
	dxt, err := DXTView(art)
	if err != nil {
		return "", err
	}
	const W, rowH, mL, mT = 900.0, 14.0, 80.0, 50.0
	tids := map[int64]int{}
	var order []int64
	tidCol := dxt.Col("thread_id")
	for i := 0; i < dxt.NRows(); i++ {
		tid := tidCol.Int(i)
		if _, ok := tids[tid]; !ok {
			tids[tid] = 0
			order = append(order, tid)
		}
	}
	sortInt64s(order)
	for i, tid := range order {
		tids[tid] = i
	}
	H := mT + rowH*float64(len(order)) + 30
	c := newCanvas(W, H)
	c.text(mL, 24, 16, fmt.Sprintf("Per-thread I/O over time — %s", art.Meta.Workflow))
	maxT, maxLen := 1e-9, int64(1)
	endCol := dxt.Col("end")
	lenCol := dxt.Col("length")
	for i := 0; i < dxt.NRows(); i++ {
		if v := endCol.Float(i); v > maxT {
			maxT = v
		}
		if v := lenCol.Int(i); v > maxLen {
			maxLen = v
		}
	}
	plotW := W - mL - 20
	startCol := dxt.Col("start")
	opCol := dxt.Col("op")
	for i := 0; i < dxt.NRows(); i++ {
		row := tids[tidCol.Int(i)]
		x0 := mL + startCol.Float(i)/maxT*plotW
		x1 := mL + endCol.Float(i)/maxT*plotW
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		color := "#d62728" // read: red
		if opCol.Str(i) == "write" {
			color = "#1f77b4" // write: blue
		}
		opacity := 0.25 + 0.75*float64(lenCol.Int(i))/float64(maxLen)
		c.rect(x0, mT+float64(row)*rowH+2, x1-x0, rowH-4, color, opacity)
	}
	for i, tid := range order {
		c.text(8, mT+float64(i)*rowH+rowH-3, 9, fmt.Sprintf("tid %d", tid))
	}
	c.line(mL, mT+rowH*float64(len(order)), mL+plotW, mT+rowH*float64(len(order)), "#000000", 1)
	c.text(mL+plotW-50, H-8, 10, fmt.Sprintf("%.0fs", maxT))
	c.text(mL, H-8, 10, "0s")
	return c.String(), nil
}

// CommScatterSVG renders Fig. 5: transfer duration vs size on log-log
// scales, orange = inter-node, teal = intra-node.
func CommScatterSVG(art *core.RunArtifacts) (string, error) {
	tr, err := TransfersView(art)
	if err != nil {
		return "", err
	}
	const W, H, mL, mB, mT = 720.0, 420.0, 70.0, 50.0, 40.0
	c := newCanvas(W, H)
	c.text(mL, 24, 16, fmt.Sprintf("Communication time vs size — %s", art.Meta.Workflow))
	if tr.NRows() == 0 {
		return c.String(), nil
	}
	plotW, plotH := W-mL-20, H-mB-mT
	y0 := H - mB
	bytesCol := tr.Col("bytes")
	durCol := tr.Col("duration")
	sameCol := tr.Col("same_node")
	minX, maxX := math.Inf(1), 1.0
	minY, maxY := math.Inf(1), 1e-9
	for i := 0; i < tr.NRows(); i++ {
		x := math.Max(1, float64(bytesCol.Int(i)))
		y := math.Max(1e-7, durCol.Float(i))
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	lx := func(v float64) float64 {
		return mL + (math.Log10(v)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX)+1e-12)*plotW
	}
	ly := func(v float64) float64 {
		return y0 - (math.Log10(v)-math.Log10(minY))/(math.Log10(maxY)-math.Log10(minY)+1e-12)*plotH
	}
	for i := 0; i < tr.NRows(); i++ {
		x := math.Max(1, float64(bytesCol.Int(i)))
		y := math.Max(1e-7, durCol.Float(i))
		color := "#ff7f0e" // inter-node: orange
		if sameCol.Bool(i) {
			color = "#2ca02c" // intra-node: green
		}
		c.circle(lx(x), ly(y), 2.4, color, 0.55)
	}
	c.line(mL, mT, mL, y0, "#000000", 1)
	c.line(mL, y0, mL+plotW, y0, "#000000", 1)
	c.text(mL+plotW/2-60, H-12, 12, "transfer size (bytes, log)")
	c.text(8, mT+plotH/2, 12, "time (s, log)")
	c.rect(mL, 30, 10, 10, "#ff7f0e", 0.9)
	c.text(mL+14, 39, 11, "inter-node")
	c.rect(mL+110, 30, 10, 10, "#2ca02c", 0.9)
	c.text(mL+124, 39, 11, "intra-node")
	return c.String(), nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
