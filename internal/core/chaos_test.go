package core

import (
	"fmt"
	"testing"

	"taskprov/internal/dask"
	"taskprov/internal/sim"
)

// crashWorkflow is a two-layer graph with cross-partition dependencies,
// sized so a worker kill at 6s lands mid-run with layer-1 outputs (held on
// the victim) still needed by layer 2.
type crashWorkflow struct {
	width    int
	graphErr string
}

func (c *crashWorkflow) Name() string { return "crash" }

func (c *crashWorkflow) Stage(env *Env) {}

func (c *crashWorkflow) Run(p *sim.Proc, cl *dask.Client, env *Env) {
	g := dask.NewGraph(1)
	var mids []dask.TaskKey
	for i := 0; i < c.width; i++ {
		g.Add(&dask.TaskSpec{
			Key:         dask.TaskKey(fmt.Sprintf("src-%02d", i)),
			EstDuration: sim.Seconds(1), OutputSize: 1 << 20,
		})
	}
	for i := 0; i < c.width; i++ {
		k := dask.TaskKey(fmt.Sprintf("mid-%02d", i))
		mids = append(mids, k)
		g.Add(&dask.TaskSpec{
			Key: k,
			Deps: []dask.TaskKey{
				dask.TaskKey(fmt.Sprintf("src-%02d", i)),
				dask.TaskKey(fmt.Sprintf("src-%02d", (i+1)%c.width)),
				dask.TaskKey(fmt.Sprintf("src-%02d", (i+3)%c.width)),
			},
			EstDuration: sim.Milliseconds(1500), OutputSize: 1 << 18,
		})
	}
	g.Add(&dask.TaskSpec{Key: "sink-00", Deps: mids, EstDuration: sim.Milliseconds(100), OutputSize: 256})
	cl.SubmitAndWait(p, g)
	c.graphErr = cl.GraphError(1)
}

// chaosRun executes the crash workflow with one worker killed mid-run and
// restarted, returning the run artifacts and the decoded warning stream.
func chaosRun(t *testing.T, seed uint64) (*RunArtifacts, []dask.Warning) {
	t.Helper()
	cfg := testSession(seed)
	cfg.ChaosSpec = "kill worker=2 at=6s restart=4s"
	wf := &crashWorkflow{width: 32}
	art, err := Run(cfg, wf)
	if err != nil {
		t.Fatal(err)
	}
	if wf.graphErr != "" {
		t.Fatalf("graph erred under chaos: %s", wf.graphErr)
	}
	metas, err := DrainTopic(art.Broker, TopicWarnings)
	if err != nil {
		t.Fatal(err)
	}
	warns := make([]dask.Warning, len(metas))
	for i, m := range metas {
		warns[i] = ParseWarning(m)
	}
	return art, warns
}

// TestChaosSessionRecovers is the end-to-end acceptance scenario: a session
// configured with a ChaosSpec kills one worker mid-workflow; the run still
// completes and the provenance stream records the full failure/recovery
// story (worker lost, tasks rescheduled, lost keys recomputed, rejoin).
func TestChaosSessionRecovers(t *testing.T) {
	art, warns := chaosRun(t, 21)

	if art.Meta.Instrumentation.Chaos != "kill worker=2 at=6s restart=4s" {
		t.Fatalf("run metadata chaos spec = %q", art.Meta.Instrumentation.Chaos)
	}
	kinds := make(map[dask.WarningKind]int)
	for _, w := range warns {
		kinds[w.Kind]++
	}
	if kinds[dask.WarnWorkerLost] != 1 {
		t.Fatalf("worker_lost events = %d, want 1 (kinds: %v)", kinds[dask.WarnWorkerLost], kinds)
	}
	if kinds[dask.WarnTaskRescheduled] == 0 {
		t.Fatalf("no task_rescheduled events (kinds: %v)", kinds)
	}
	if kinds[dask.WarnKeyRecomputed] == 0 {
		t.Fatalf("no key_recomputed events (kinds: %v)", kinds)
	}
	if kinds[dask.WarnWorkerRejoined] != 1 {
		t.Fatalf("worker_rejoined events = %d, want 1 (kinds: %v)", kinds[dask.WarnWorkerRejoined], kinds)
	}
}

// TestChaosDeterministicReplay: the same seed and chaos spec must reproduce
// the identical failure/recovery event sequence, event for event.
func TestChaosDeterministicReplay(t *testing.T) {
	_, a := chaosRun(t, 21)
	_, b := chaosRun(t, 21)
	if len(a) != len(b) {
		t.Fatalf("warning counts differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("warning %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
