package core

import (
	"fmt"
	"sync"
	"time"

	"taskprov/internal/mofka"
)

// InSituMonitor is the paper's in situ consumption mode: an analysis
// consumer that runs in tandem with the instrumented workflow, pulling
// provenance events from Mofka as they are produced and maintaining running
// statistics. Because event streams are persistent, the monitor sees
// exactly the same records a post-mortem analysis would — it just sees them
// earlier ("workflow execution and in situ analysis can each proceed at
// their own pace", §III-B).
type InSituMonitor struct {
	broker *mofka.Broker

	mu     sync.Mutex
	counts map[string]int64
	warn   map[string]int64
	maxDur float64
	maxKey string

	stop chan struct{}
	done sync.WaitGroup
}

// NewInSituMonitor starts one consumer goroutine per provenance topic on
// the broker (topics are created if absent so the monitor can start before
// the collector). Call Stop to drain and finish.
func NewInSituMonitor(broker *mofka.Broker) (*InSituMonitor, error) {
	m := &InSituMonitor{
		broker: broker,
		counts: make(map[string]int64),
		warn:   make(map[string]int64),
		stop:   make(chan struct{}),
	}
	for _, name := range AllTopics() {
		t, err := broker.OpenOrCreateTopic(mofka.TopicConfig{Name: name, Partitions: 2})
		if err != nil {
			return nil, err
		}
		c, err := t.NewConsumer(mofka.ConsumerOptions{Name: "insitu", NoData: true})
		if err != nil {
			return nil, err
		}
		m.done.Add(1)
		go m.consume(name, c)
	}
	return m, nil
}

func (m *InSituMonitor) consume(topic string, c *mofka.Consumer) {
	defer m.done.Done()
	for {
		ev, ok, err := c.PullBlocking(50 * time.Millisecond)
		if err != nil {
			return
		}
		if !ok {
			select {
			case <-m.stop:
				// Final drain: the producer has flushed; consume whatever
				// remains, then exit.
				for {
					ev, ok, err := c.Pull()
					if err != nil || !ok {
						return
					}
					m.observe(topic, ev)
				}
			default:
				continue
			}
		} else {
			m.observe(topic, ev)
		}
	}
}

func (m *InSituMonitor) observe(topic string, ev mofka.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[topic]++
	switch topic {
	case TopicWarnings:
		if meta, err := ev.ParseMetadata(); err == nil {
			m.warn[str(meta, "kind")]++
		}
	case TopicExecutions:
		if meta, err := ev.ParseMetadata(); err == nil {
			if d := num(meta, "stop") - num(meta, "start"); d > m.maxDur {
				m.maxDur = d
				m.maxKey = str(meta, "key")
			}
		}
	}
}

// Stop drains the remaining events and stops the consumer goroutines.
func (m *InSituMonitor) Stop() {
	close(m.stop)
	m.done.Wait()
}

// EventCount returns the number of events observed on a topic so far.
func (m *InSituMonitor) EventCount(topic string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[topic]
}

// WarningCount returns the occurrences of one warning kind so far.
func (m *InSituMonitor) WarningCount(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.warn[kind]
}

// LongestTask returns the slowest execution seen so far.
func (m *InSituMonitor) LongestTask() (key string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxKey, m.maxDur
}

// Snapshot renders the running statistics.
func (m *InSituMonitor) Snapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := "in-situ monitor:\n"
	for _, t := range AllTopics() {
		s += fmt.Sprintf("  %-18s %d events\n", t, m.counts[t])
	}
	if m.maxKey != "" {
		s += fmt.Sprintf("  longest task so far: %s (%.3fs)\n", m.maxKey, m.maxDur)
	}
	return s
}
