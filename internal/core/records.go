// Package core is the paper's primary contribution: the layered
// characterization framework. It wires the WMS (internal/dask), the I/O
// characterization tool (internal/darshan), and the event streaming service
// (internal/mofka) into instrumented workflow runs, captures the provenance
// chart's metadata layers (Fig. 1), and produces the RunArtifacts that
// PERFRECUP analyzes.
//
// Collection follows the paper's architecture exactly: scheduler and worker
// plugins intercept WMS events and push them to Mofka topics ("Dask as the
// producer"), Darshan runtimes per worker collect I/O counters and DXT
// traces independently, and the two are only fused later, at analysis time,
// on shared identifiers (hostname, pthread ID, timestamps).
//
// The event schema itself — topic names and the encode/parse pairs — lives
// in internal/provenance so that stream consumers that core itself depends
// on (the live monitoring subsystem, internal/live) can share it without an
// import cycle. This file re-exports the schema under the historical names.
package core

import (
	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/provenance"
	"taskprov/internal/sim"
)

// Mofka topic names used by the provenance plugins (see
// internal/provenance).
const (
	TopicTaskMeta    = provenance.TopicTaskMeta
	TopicTransitions = provenance.TopicTransitions
	TopicExecutions  = provenance.TopicExecutions
	TopicTransfers   = provenance.TopicTransfers
	TopicWarnings    = provenance.TopicWarnings
	TopicHeartbeats  = provenance.TopicHeartbeats
	TopicSteals      = provenance.TopicSteals
	TopicGraphs      = provenance.TopicGraphs
	TopicProxy       = provenance.TopicProxy
	TopicSpeculation = provenance.TopicSpeculation
	TopicAnomalies   = provenance.TopicAnomalies
)

// AllTopics lists every topic the plugins produce into.
func AllTopics() []string { return provenance.AllTopics() }

// TaskMetaEvent encodes a TaskMeta as Mofka event metadata.
func TaskMetaEvent(m dask.TaskMeta) mofka.Metadata { return provenance.TaskMetaEvent(m) }

// TransitionEvent encodes a Transition as Mofka event metadata.
func TransitionEvent(t dask.Transition) mofka.Metadata { return provenance.TransitionEvent(t) }

// ExecutionEvent encodes a TaskExecution as Mofka event metadata.
func ExecutionEvent(e dask.TaskExecution) mofka.Metadata { return provenance.ExecutionEvent(e) }

// TransferEvent encodes a Transfer as Mofka event metadata.
func TransferEvent(t dask.Transfer) mofka.Metadata { return provenance.TransferEvent(t) }

// WarningEvent encodes a Warning as Mofka event metadata.
func WarningEvent(w dask.Warning) mofka.Metadata { return provenance.WarningEvent(w) }

// HeartbeatEvent encodes a WorkerMetrics sample as Mofka event metadata.
func HeartbeatEvent(m dask.WorkerMetrics) mofka.Metadata { return provenance.HeartbeatEvent(m) }

// StealEventMeta encodes a StealEvent as Mofka event metadata.
func StealEventMeta(s dask.StealEvent) mofka.Metadata { return provenance.StealEventMeta(s) }

// ProxyEventMeta encodes a ProxyEvent as Mofka event metadata.
func ProxyEventMeta(e dask.ProxyEvent) mofka.Metadata { return provenance.ProxyEventMeta(e) }

// SpeculationEventMeta encodes a SpeculationEvent as Mofka event metadata.
func SpeculationEventMeta(e dask.SpeculationEvent) mofka.Metadata {
	return provenance.SpeculationEventMeta(e)
}

// GraphDoneEvent encodes a graph completion as Mofka event metadata.
func GraphDoneEvent(graphID int, at sim.Time) mofka.Metadata {
	return provenance.GraphDoneEvent(graphID, at)
}

// ---- decoding (used by PERFRECUP loaders) ----

func str(m mofka.Metadata, k string) string  { return provenance.Str(m, k) }
func num(m mofka.Metadata, k string) float64 { return provenance.Num(m, k) }

// ParseTransition decodes metadata written by TransitionEvent.
func ParseTransition(m mofka.Metadata) dask.Transition { return provenance.ParseTransition(m) }

// ParseExecution decodes metadata written by ExecutionEvent.
func ParseExecution(m mofka.Metadata) dask.TaskExecution { return provenance.ParseExecution(m) }

// ParseTransfer decodes metadata written by TransferEvent.
func ParseTransfer(m mofka.Metadata) dask.Transfer { return provenance.ParseTransfer(m) }

// ParseWarning decodes metadata written by WarningEvent.
func ParseWarning(m mofka.Metadata) dask.Warning { return provenance.ParseWarning(m) }

// ParseTaskMeta decodes metadata written by TaskMetaEvent.
func ParseTaskMeta(m mofka.Metadata) dask.TaskMeta { return provenance.ParseTaskMeta(m) }

// ParseHeartbeat decodes metadata written by HeartbeatEvent.
func ParseHeartbeat(m mofka.Metadata) dask.WorkerMetrics { return provenance.ParseHeartbeat(m) }

// ParseSteal decodes metadata written by StealEventMeta.
func ParseSteal(m mofka.Metadata) dask.StealEvent { return provenance.ParseSteal(m) }

// ParseProxyEvent decodes metadata written by ProxyEventMeta.
func ParseProxyEvent(m mofka.Metadata) dask.ProxyEvent { return provenance.ParseProxyEvent(m) }

// ParseSpeculationEvent decodes metadata written by SpeculationEventMeta.
func ParseSpeculationEvent(m mofka.Metadata) dask.SpeculationEvent {
	return provenance.ParseSpeculationEvent(m)
}

// DrainTopic pulls every event of a topic and decodes its metadata.
func DrainTopic(b *mofka.Broker, topic string) ([]mofka.Metadata, error) {
	return provenance.DrainTopic(b, topic)
}
