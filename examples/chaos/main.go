// Chaos example: run ImageProcessing while killing one of its 8 workers
// mid-flight (restarting it later), let the scheduler recover — evict the
// dead worker, reschedule its in-flight tasks, recompute lost keys — and
// show how the failure episode documents itself in the provenance stream.
//
// The run is fully deterministic: the same seed and chaos spec reproduce the
// identical recovery event sequence, which the example checks by running
// twice and comparing timelines.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"taskprov/internal/core"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

const spec = "kill worker=3 at=40s restart=25s"

func run(seed uint64) (string, *core.RunArtifacts) {
	wf, err := workloads.New("imageprocessing")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultSession("imageprocessing", "chaos-example", seed)
	cfg.ChaosSpec = spec
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}
	f, err := perfrecup.RecoveryTimelineView(art)
	if err != nil {
		log.Fatal(err)
	}
	return perfrecup.RenderRecoveryTimeline(f), art
}

func main() {
	fmt.Printf("chaos spec: %q\n\n", spec)
	timeline, art := run(7)
	fmt.Printf("run completed: wall=%.1fs, %d graphs done\n\n", art.Meta.WallSeconds, 3)
	fmt.Println("recovery timeline:")
	fmt.Print(timeline)

	// Determinism: the same seed and spec must reproduce the identical
	// failure and recovery sequence.
	timeline2, _ := run(7)
	if timeline == timeline2 {
		fmt.Println("\nsecond run with the same seed reproduced the identical timeline ✓")
	} else {
		log.Fatal("second run diverged — determinism broken")
	}
}
