package whatif_test

import (
	"math"
	"sync"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/whatif"
	"taskprov/internal/workloads"
)

// seededRun executes one seeded workload under full instrumentation,
// caching artifacts per workflow so the validation tests share runs.
var (
	runMu    sync.Mutex
	runCache = map[string]*core.RunArtifacts{}
)

func seededRun(t *testing.T, name string) *core.RunArtifacts {
	t.Helper()
	runMu.Lock()
	defer runMu.Unlock()
	if art, ok := runCache[name]; ok {
		return art
	}
	wf, err := workloads.New(name)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	cfg := workloads.DefaultSession(name, "whatif-"+name, 7)
	art, err := core.Run(cfg, wf)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	runCache[name] = art
	return art
}

// TestSelfReplayValidation is the subsystem's acceptance gate: replaying the
// *unchanged* scenario over the extracted model must predict the measured
// makespan within +/-10% — on both the ImageProcessing and xgboost seeded
// runs (`make whatif` runs exactly this test).
func TestSelfReplayValidation(t *testing.T) {
	for _, name := range []string{"imageprocessing", "xgboost"} {
		t.Run(name, func(t *testing.T) {
			art := seededRun(t, name)
			model, err := art.ExtractModel()
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			res, err := model.Replay(whatif.Scenario{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Mode != "pinned" {
				t.Errorf("baseline replay mode = %q, want pinned", res.Mode)
			}
			rel := math.Abs(res.DeltaFraction)
			t.Logf("%s: measured %.3fs, predicted %.3fs (%.2f%%), utilization %.3f -> %.3f",
				name, res.MeasuredMakespanSeconds, res.PredictedMakespanSeconds,
				100*res.DeltaFraction, res.MeasuredUtilization, res.PredictedUtilization)
			if rel > 0.10 {
				t.Errorf("self-replay error %.2f%% exceeds the 10%% tolerance (measured %.3fs, predicted %.3fs)",
					100*rel, res.MeasuredMakespanSeconds, res.PredictedMakespanSeconds)
			}
		})
	}
}

// TestCriticalPathAttribution checks the second acceptance criterion: the
// whole-run critical path attributes at least 95% of its span to the named
// categories on the seeded examples.
func TestCriticalPathAttribution(t *testing.T) {
	for _, name := range []string{"imageprocessing", "xgboost"} {
		t.Run(name, func(t *testing.T) {
			art := seededRun(t, name)
			model, err := art.ExtractModel()
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			cp := model.CriticalPath()
			if cp.MakespanSeconds <= 0 {
				t.Fatalf("critical path has no span")
			}
			t.Logf("%s: %s", name, cp.Summarize())
			if cp.Coverage < 0.95 {
				t.Errorf("attribution coverage %.3f < 0.95 (categories %v over %.3fs)",
					cp.Coverage, cp.Categories, cp.MakespanSeconds)
			}
			if cp.Coverage > 1.05 {
				t.Errorf("attribution coverage %.3f > 1.05 — double counting", cp.Coverage)
			}
			// The per-run digest must be attached to the artifacts too.
			if art.CritPath == nil {
				t.Fatalf("RunArtifacts.CritPath not populated")
			}
			if math.Abs(art.CritPath.MakespanSeconds-cp.MakespanSeconds) > 1e-9 {
				t.Errorf("RunArtifacts.CritPath makespan %.6f != %.6f",
					art.CritPath.MakespanSeconds, cp.MakespanSeconds)
			}
		})
	}
}
