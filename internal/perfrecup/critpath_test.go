package perfrecup

import (
	"encoding/xml"
	"path/filepath"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/whatif"
)

// TestCritPathGoldenDeterminism pins the critpath report byte-identical
// across every load path: the live in-memory broker, a WAL replay of the
// durable event log, and a post-mortem load of the written run directory.
// The report is a pure function of the recorded provenance, so the loader
// that materialized it must not be observable in the output.
func TestCritPathGoldenDeterminism(t *testing.T) {
	dataDir := t.TempDir()
	live := durableRun(t, dataDir)

	golden, err := RenderCritPath(live)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(golden, "attribution:") || !strings.Contains(golden, "chain (time order):") {
		t.Fatalf("report missing sections:\n%s", golden)
	}
	// The attribution must cover the makespan (the >= 95% acceptance bound;
	// it is exactly 100% by construction on a consistent stream).
	if !strings.Contains(golden, "coverage 100.0%") {
		t.Fatalf("report does not attribute the full makespan:\n%s", golden)
	}

	wal, err := LoadEventLog(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	fromWAL, err := RenderCritPath(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fromWAL != golden {
		t.Errorf("critpath report differs between live broker and WAL replay:\nlive:\n%s\nwal:\n%s", golden, fromWAL)
	}

	runDir := filepath.Join(t.TempDir(), "run")
	if err := live.WriteDir(runDir); err != nil {
		t.Fatal(err)
	}
	pm, err := core.LoadDir(runDir)
	if err != nil {
		t.Fatal(err)
	}
	fromDir, err := RenderCritPath(pm)
	if err != nil {
		t.Fatal(err)
	}
	if fromDir != golden {
		t.Errorf("critpath report differs between live broker and post-mortem run dir:\nlive:\n%s\ndir:\n%s", golden, fromDir)
	}

	// Rendering is repeatable on the same artifacts (no hidden map-order or
	// drain-state dependence).
	again, err := RenderCritPath(live)
	if err != nil {
		t.Fatal(err)
	}
	if again != golden {
		t.Error("second render of the same artifacts differs")
	}
}

// TestCritPathViewAndSVG: the frame view carries the chain with its
// decomposition and slack, and the SVG overlay is well-formed XML.
func TestCritPathViewAndSVG(t *testing.T) {
	dir := t.TempDir()
	art := durableRun(t, dir)

	f, err := CritPathView(art)
	if err != nil {
		t.Fatal(err)
	}
	if f.NRows() == 0 {
		t.Fatal("empty critpath view")
	}
	for _, col := range []string{"step", "key", "worker", "reason", "compute", "io", "proxy",
		"wait_transfer", "wait_scheduler", "slack"} {
		if !f.HasCol(col) {
			t.Errorf("critpath view missing column %q", col)
		}
	}
	// The chain is in time order and ends at the run's last task.
	stops := f.Col("stop")
	for i := 1; i < f.NRows(); i++ {
		if stops.Float(i) < stops.Float(i-1) {
			t.Errorf("chain not in time order at step %d", i+1)
		}
	}

	svg, err := CritPathSVG(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := xml.Unmarshal([]byte(svg), new(struct{})); err != nil {
		t.Fatalf("critpath SVG is not well-formed XML: %v", err)
	}
	if !strings.Contains(svg, "critical path") {
		t.Error("SVG lacks the critical-path legend")
	}
}

// TestRenderWhatIf: the scenario table includes every requested scenario
// with its mode and prediction, and baseline self-replay stays within the
// validation tolerance.
func TestRenderWhatIf(t *testing.T) {
	dir := t.TempDir()
	art := durableRun(t, dir)
	model, err := art.ExtractModel()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []whatif.Scenario{{}, {Workers: 1, ThreadsPerWorker: 1}}
	var results []*whatif.Result
	for _, s := range scenarios {
		r, err := model.Replay(s)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if d := results[0].DeltaFraction; d < -0.10 || d > 0.10 {
		t.Errorf("baseline self-replay off by %.1f%%", 100*d)
	}
	out := RenderWhatIf(model, results)
	for _, want := range []string{"baseline", "workers=1 threads=1", "pinned", "replaced", "measured makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("what-if table missing %q:\n%s", want, out)
		}
	}
}
