package dask

import (
	"fmt"

	"taskprov/internal/platform"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// TracerFactory builds the per-worker-process I/O tracer (the Darshan
// runtime in an instrumented run; nil tracers disable I/O instrumentation).
type TracerFactory func(rank int, hostname string) posixio.Tracer

// Cluster is a Dask-style deployment bound to a simulation kernel: one
// scheduler, one client, and WorkersPerNode workers on every platform node.
type Cluster struct {
	cfg    Config
	kernel *sim.Kernel
	plat   *platform.Cluster
	fs     *posixio.FS

	scheduler *Scheduler
	client    *Client
	workers   []*Worker

	schedPlugins  []SchedulerPlugin
	workerPlugins []WorkerPlugin

	// proxy is the pass-by-reference data plane; nil when
	// cfg.ProxyThresholdBytes == 0 (direct transfers only).
	proxy *proxyPlane

	// resumeSeeded tracks blobs SeedResume published whose keys no
	// resubmitted graph has (yet) claimed; whatever remains at run end is an
	// orphan ReleaseResumeOrphans frees.
	resumeSeeded map[TaskKey]bool

	// controlBytes accumulates every byte that crosses the scheduler's
	// control path — control messages, proxy references, and (in direct mode)
	// gathered payloads relayed through the scheduler. The proxy benchmark
	// compares this between data planes.
	controlBytes int64
}

// NewCluster builds the deployment. fs may be nil for workloads that never
// touch storage. tracers may be nil.
func NewCluster(k *sim.Kernel, plat *platform.Cluster, fs *posixio.FS, cfg Config, tracers TracerFactory) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, kernel: k, plat: plat, fs: fs}
	if cfg.ProxyThresholdBytes > 0 {
		c.proxy = newProxyPlane(c)
	}
	schedNode := plat.Node(cfg.SchedulerNode % len(plat.Nodes()))
	c.scheduler = newScheduler(c, schedNode)
	c.client = newClient(c, schedNode)
	rank := 0
	for _, node := range plat.Nodes() {
		for i := 0; i < cfg.WorkersPerNode; i++ {
			var tracer posixio.Tracer
			if tracers != nil {
				tracer = tracers(rank, node.Hostname)
			}
			w := newWorker(c, rank, node, tracer)
			c.workers = append(c.workers, w)
			rank++
		}
	}
	c.scheduler.registerWorkers(c.workers)
	return c
}

// Kernel returns the simulation kernel.
func (c *Cluster) Kernel() *sim.Kernel { return c.kernel }

// Config returns the normalized configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Client returns the cluster's client handle.
func (c *Cluster) Client() *Client { return c.client }

// Scheduler returns the scheduler handle.
func (c *Cluster) Scheduler() *Scheduler { return c.scheduler }

// Workers returns the workers in rank order.
func (c *Cluster) Workers() []*Worker { return c.workers }

// FS returns the POSIX layer workers perform I/O through (may be nil).
func (c *Cluster) FS() *posixio.FS { return c.fs }

// AddSchedulerPlugin attaches a scheduler observer. Must be called before
// Start.
func (c *Cluster) AddSchedulerPlugin(p SchedulerPlugin) {
	c.schedPlugins = append(c.schedPlugins, p)
}

// AddWorkerPlugin attaches a worker observer (shared by all workers). Must
// be called before Start.
func (c *Cluster) AddWorkerPlugin(p WorkerPlugin) {
	c.workerPlugins = append(c.workerPlugins, p)
}

// Start connects workers to the scheduler (staggered, as real workers race
// through job startup) and begins heartbeats and the stealing loop. The
// returned time is when the last worker finished connecting — the moment a
// client blocking on "wait for workers" unblocks.
func (c *Cluster) Start() {
	connect := c.kernel.RNG("dask/connect")
	for _, w := range c.workers {
		w := w
		delay := sim.Seconds(connect.Uniform(0.5, 3.0))
		c.kernel.After(delay, w.start)
	}
	c.scheduler.start()
}

// KillWorker crashes worker rank's process immediately: all its state is
// lost and the scheduler discovers the death through missed heartbeats. The
// entry point used by fault injection.
func (c *Cluster) KillWorker(rank int) {
	c.workers[rank].kill()
}

// RestartWorker boots a fresh process for a previously killed worker; it
// reconnects to the scheduler holding no data.
func (c *Cluster) RestartWorker(rank int) {
	c.workers[rank].restart()
}

// SlowWorker dilates worker rank's compute and I/O service times by factor —
// a brownout: the worker stays alive and keeps heartbeating, it is just
// slow. The entry point used by chaos "slow" directives. The degradation
// models the host, so it survives kill/restart of the worker process.
func (c *Cluster) SlowWorker(rank int, factor float64) {
	if factor < 1 {
		factor = 1
	}
	c.workers[rank].slowFactor = factor
}

// ClearSlowdown restores worker rank to full speed.
func (c *Cluster) ClearSlowdown(rank int) {
	c.workers[rank].slowFactor = 1
}

// SetSpeculationAdvisor installs the straggler advisor the scheduler's
// speculation tick consults (nil keeps the built-in per-prefix quantile
// policy). Must be called before Start.
func (c *Cluster) SetSpeculationAdvisor(adv SpeculationAdvisor) {
	c.scheduler.specAdvisor = adv
}

// control models a small control-plane message between two nodes, invoking
// handle on arrival.
func (c *Cluster) control(from, to *platform.Node, handle func()) {
	c.addControlBytes(c.cfg.ControlMessageBytes)
	c.plat.Transfer(from, to, c.cfg.ControlMessageBytes, func(sim.Time) { handle() })
}

// addControlBytes charges n bytes to the scheduler control path.
func (c *Cluster) addControlBytes(n int64) { c.controlBytes += n }

// ControlPathBytes reports the cumulative bytes moved over the scheduler
// control path so far.
func (c *Cluster) ControlPathBytes() int64 { return c.controlBytes }

// workerAddr formats the Dask-style address of a worker.
func workerAddr(hostname string, rank int) string {
	return fmt.Sprintf("tcp://%s:%d", hostname, 40000+rank)
}

// emitSchedTransition fans a scheduler-side transition out to plugins.
func (c *Cluster) emitSchedTransition(t Transition) {
	for _, p := range c.schedPlugins {
		p.SchedulerTransition(t)
	}
}

// emitWorkerTransition fans a worker-side transition out to plugins.
func (c *Cluster) emitWorkerTransition(t Transition) {
	for _, p := range c.workerPlugins {
		p.WorkerTransition(t)
	}
}
