package sim

import (
	"fmt"
	"math"
)

// SharedServer is a processor-sharing resource: all active jobs progress
// simultaneously, each receiving an equal share of the server's capacity
// (optionally capped per job). It models bandwidth-shared devices such as
// NICs and parallel-file-system object storage targets, where N concurrent
// transfers each see roughly 1/N of the device throughput.
type SharedServer struct {
	k         *Kernel
	name      string
	capacity  float64 // units per second (e.g. bytes/s)
	perJobCap float64 // max units per second a single job may receive; 0 = no cap
	// jobs is kept in submission order: completion callbacks for jobs that
	// finish at the same instant must fire in a reproducible order, so the
	// server never iterates a map to find them.
	jobs       []*SharedJob
	lastUpdate Time
	completion *Event
	busyUnits  float64 // total units served, for utilization accounting
}

// SharedJob is one unit of work in flight on a SharedServer.
type SharedJob struct {
	srv       *SharedServer
	remaining float64
	done      func()
	started   Time
}

// NewSharedServer creates a processor-sharing server with the given total
// capacity in units/second. perJobCap limits the rate a single job can
// receive (0 means unlimited, i.e. a lone job gets the full capacity).
func NewSharedServer(k *Kernel, name string, capacity, perJobCap float64) *SharedServer {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: SharedServer %q capacity must be positive", name))
	}
	return &SharedServer{k: k, name: name, capacity: capacity, perJobCap: perJobCap}
}

// Name returns the server's diagnostic name.
func (s *SharedServer) Name() string { return s.name }

// Active reports the number of in-flight jobs.
func (s *SharedServer) Active() int { return len(s.jobs) }

// UnitsServed reports the cumulative units delivered to completed-or-running
// jobs so far (advanced lazily; call after Submit/completion events for an
// up-to-date figure).
func (s *SharedServer) UnitsServed() float64 { return s.busyUnits }

// rate returns the per-job service rate given the current job count.
func (s *SharedServer) rate() float64 {
	n := len(s.jobs)
	if n == 0 {
		return 0
	}
	r := s.capacity / float64(n)
	if s.perJobCap > 0 && r > s.perJobCap {
		r = s.perJobCap
	}
	return r
}

// advance progresses every in-flight job to the current virtual time.
func (s *SharedServer) advance() {
	now := s.k.Now()
	dt := (now - s.lastUpdate).Seconds()
	if dt > 0 {
		r := s.rate()
		for _, j := range s.jobs {
			served := r * dt
			if served > j.remaining {
				served = j.remaining
			}
			j.remaining -= served
			s.busyUnits += served
		}
	}
	s.lastUpdate = now
}

// reschedule cancels any pending completion event and schedules one for the
// job that will finish soonest under the current sharing rate. The ETA is
// rounded UP to whole nanoseconds (and at least 1ns): rounding down could
// leave a sub-nanosecond residue of work that can never be served, spinning
// the kernel on zero-delay events forever.
func (s *SharedServer) reschedule() {
	if s.completion != nil {
		s.completion.Cancel()
		s.completion = nil
	}
	if len(s.jobs) == 0 {
		return
	}
	r := s.rate()
	minRemaining := -1.0
	for _, j := range s.jobs {
		if minRemaining < 0 || j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	eta := Time(math.Ceil(minRemaining / r * 1e9))
	if eta < 1 {
		eta = 1
	}
	s.completion = s.k.After(eta, s.complete)
}

// complete fires when the earliest job(s) finish; it retires every job whose
// remaining work has reached (numerically near) zero. The epsilon scales
// with the service rate: any residue smaller than one nanosecond's worth of
// service is unobservable at the kernel's resolution and counts as done.
func (s *SharedServer) complete() {
	s.advance()
	eps := s.rate()*2e-9 + 1e-9
	var finished []*SharedJob
	live := s.jobs[:0]
	for _, j := range s.jobs {
		if j.remaining <= eps {
			finished = append(finished, j)
		} else {
			live = append(live, j)
		}
	}
	for i := len(live); i < len(s.jobs); i++ {
		s.jobs[i] = nil
	}
	s.jobs = live
	s.reschedule()
	// Callbacks run after internal state is consistent so they may submit
	// new jobs to this same server.
	for _, j := range finished {
		if j.done != nil {
			j.done()
		}
	}
}

// Submit enqueues work units on the server; done is called (in a later event)
// when the job's work has been fully served. Zero or negative work completes
// after a zero-delay event, preserving the "callbacks never run inline"
// property.
func (s *SharedServer) Submit(units float64, done func()) *SharedJob {
	j := &SharedJob{srv: s, remaining: units, done: done, started: s.k.Now()}
	if units <= 0 {
		s.k.After(0, func() {
			if j.done != nil {
				j.done()
			}
		})
		return j
	}
	s.advance()
	s.jobs = append(s.jobs, j)
	s.reschedule()
	return j
}
