package wal

import (
	"fmt"
	"testing"
)

// benchRecords builds one producer-batch worth of realistic provenance
// events (~60-byte JSON metadata, no payload — the collector's common case).
func benchRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Meta: []byte(fmt.Sprintf(`{"key":"('getitem-abc', %d)","from":"waiting","to":"processing","at":%d.345}`, i, i)),
		}
	}
	return recs
}

// BenchmarkLogAppend measures raw batched-append throughput per sync policy.
func BenchmarkLogAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		sync SyncPolicy
	}{{"sync-never", SyncNever}, {"sync-interval", SyncInterval}, {"sync-batch", SyncBatch}} {
		b.Run(tc.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			recs := benchRecords(64)
			var bytes int64
			for _, r := range recs {
				bytes += frameSize(r)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogReplay measures sequential replay throughput over a populated
// log (the recovery / post-mortem load path).
func BenchmarkLogReplay(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	recs := benchRecords(64)
	const batches = 500
	var bytes int64
	for i := 0; i < batches; i++ {
		if _, err := l.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range recs {
		bytes += frameSize(r)
	}
	b.SetBytes(bytes * batches)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Replay(0, func(uint64, Record) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != batches*len(recs) {
			b.Fatalf("replayed %d records", n)
		}
	}
}
