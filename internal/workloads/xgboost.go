package workloads

import (
	"fmt"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// XGBoost reproduces the paper's regression-training workflow over the NYC
// TLC High Volume For-Hire Vehicle trip records (2019–2024, 61 parquet
// files, ~20 GiB): 72 monthly preparation graphs (whose read tasks carry the
// fused "read_parquet-fused-assign" prefix produced by Dask's graph
// optimization, with >128 MB partition outputs — Fig. 6), one distributed
// training graph (one pinned trainer per worker, as xgboost.dask does), and
// one prediction graph — Table I's 74 graphs and 10348 tasks.
//
// The long, GIL-holding parquet-decode portions of the read tasks block the
// worker event loop, producing the ~297 "unresponsive event loop" warnings
// early in the run that the paper correlates with those tasks (Fig. 7).
type XGBoost struct {
	Months     int
	Files      int
	Partitions int // partitions per month graph (last month is short)

	fileSize  []int64 // per parquet file
	readOut   []int64 // per-month fused-read output size (>128 MiB)
	lastParts int
	workers   []string // worker addresses, captured at Run time
	threads   int      // threads per worker, captured at Run time
}

// NewXGBoost builds the generator calibrated to Table I.
func NewXGBoost() *XGBoost {
	w := &XGBoost{Months: 72, Files: 61, Partitions: 40, lastParts: 34}
	rng := datasetRNG("xgboost")
	w.fileSize = make([]int64, w.Files)
	for i := range w.fileSize {
		w.fileSize[i] = int64(rng.IntBetween(280, 390)) << 20 // ~20 GiB total
	}
	w.readOut = make([]int64, w.Months)
	for m := range w.readOut {
		w.readOut[m] = int64(rng.IntBetween(300, 400)) << 20 // > 128 MB partitions
	}
	return w
}

// Name implements core.Workflow.
func (w *XGBoost) Name() string { return "xgboost" }

func (w *XGBoost) filePath(i int) string {
	year := 2019 + i/12
	month := i%12 + 1
	return fmt.Sprintf("/lus/grand/tlc/fhvhv_tripdata_%04d-%02d.parquet", year, month)
}

// fileFor maps a month graph to its parquet file; late months re-read early
// files (the tail of the dataset shares files), keeping 61 distinct files.
func (w *XGBoost) fileFor(m int) int {
	if m < w.Files {
		return m
	}
	return m - w.Files
}

// Stage implements core.Workflow.
func (w *XGBoost) Stage(env *core.Env) {
	for i := 0; i < w.Files; i++ {
		env.PFS.CreateNow(w.filePath(i), w.fileSize[i])
	}
}

// parts returns the partition count of month m: most months have 40, the
// last 2024 months (56-63) are lighter (38), and the final month is short.
func (w *XGBoost) parts(m int) int {
	if m == w.Months-1 {
		return w.lastParts
	}
	if m >= 56 && m <= 63 {
		return 38
	}
	return w.Partitions
}

func (w *XGBoost) trainKey(m int) dask.TaskKey {
	if m == w.Months-1 {
		return dask.TaskKey(fmt.Sprintf("to_frame-train-%s", pseudoHash("tf-train", m)))
	}
	return dask.TaskKey(fmt.Sprintf("concat-train-%s", pseudoHash("concat-train", m)))
}

func (w *XGBoost) testKey(m int) dask.TaskKey {
	if m == w.Months-1 {
		return dask.TaskKey(fmt.Sprintf("to_frame-test-%s", pseudoHash("tf-test", m)))
	}
	return dask.TaskKey(fmt.Sprintf("concat-test-%s", pseudoHash("concat-test", m)))
}

// ExpectedTasks returns the total task count across all 74 graphs.
func (w *XGBoost) ExpectedTasks() int {
	total := 0
	for m := 0; m < w.Months; m++ {
		p := w.parts(m)
		total += 1 + 3*p + p/2 + 2
		if m == w.Months-1 {
			total += 2
		}
	}
	return total + (8*8 + 1) + 62
}

// Run implements core.Workflow: months are submitted eagerly (the client
// builds them back to back); training and prediction wait on the results.
func (w *XGBoost) Run(p *sim.Proc, cl *dask.Client, env *core.Env) {
	w.workers = nil
	for _, wk := range env.Cluster.Workers() {
		w.workers = append(w.workers, wk.Addr())
	}
	w.threads = env.Cluster.Config().ThreadsPerWorker
	// The driver script builds and submits one graph per month; reading
	// parquet metadata and constructing each month's frame takes a few
	// seconds of client time, so submissions (and therefore the long fused
	// reads) spread over the first several hundred seconds of the run —
	// the window where Fig. 7's event-loop warnings accumulate.
	think := env.RNG.Split("xgboost/think")
	for m := 0; m < w.Months; m++ {
		cl.Submit(p, w.monthGraph(m))
		p.Sleep(sim.Seconds(think.Uniform(0.15, 0.35)))
	}
	for m := 0; m < w.Months; m++ {
		cl.Wait(p, m+1)
	}
	cl.SubmitAndWait(p, w.trainGraph())
	cl.SubmitAndWait(p, w.predictGraph())
}

// monthGraph builds graph m+1: fused parquet read, per-partition feature
// prep, pairwise column drops, and train/test concatenations.
func (w *XGBoost) monthGraph(m int) *dask.Graph {
	g := dask.NewGraph(m + 1)
	parts := w.parts(m)
	fileIdx := w.fileFor(m)
	size := w.fileSize[fileIdx]
	out := w.readOut[m]

	read := dask.TaskKey(fmt.Sprintf("read_parquet-fused-assign-%s", pseudoHash("read", m)))
	g.Add(&dask.TaskSpec{
		Key:             read,
		OutputSize:      out,
		BlocksEventLoop: true, // parquet decode holds the GIL
		Run: func(ctx *dask.TaskContext) {
			f, err := ctx.Open(w.filePath(fileIdx), posixio.RDONLY)
			if err != nil {
				panic(err)
			}
			// Row-group read count varies run to run with memory pressure:
			// the wide Table I I/O range for this workflow.
			rng := ctx.RNG()
			nReads := rng.IntBetween(13, 23)
			chunk := size / int64(nReads)
			for c := 0; c < nReads; c++ {
				f.Pread(ctx.Proc(), int64(c)*chunk, chunk)
			}
			f.Close(ctx.Proc())
			// GIL-holding decompression+assign (blocks the event loop),
			// then cooperative dataframe assembly.
			ctx.Compute(sim.Seconds(rng.Uniform(10, 15)))
			ctx.SetOutputSize(out)
		},
	})

	var drops []dask.TaskKey
	var splits []dask.TaskKey
	for pi := 0; pi < parts; pi++ {
		idx := m*w.Partitions + pi // global partition index (Fig. 8 keys)
		getitem := dask.TaskKey(tupleKey("getitem", pseudoHash("getitem", m), idx))
		g.Add(&dask.TaskSpec{
			Key: getitem, Deps: []dask.TaskKey{read},
			OutputSize: 30 << 20, EstDuration: sim.Milliseconds(260),
		})
		cats := dask.TaskKey(tupleKey("getitem__get_categories", pseudoHash("cats", m), idx))
		g.Add(&dask.TaskSpec{
			Key: cats, Deps: []dask.TaskKey{getitem},
			OutputSize: 25 << 20, EstDuration: sim.Milliseconds(300),
		})
		split := dask.TaskKey(tupleKey("random_split_take", pseudoHash("split", m), idx))
		g.Add(&dask.TaskSpec{
			Key: split, Deps: []dask.TaskKey{getitem, cats},
			OutputSize: 28 << 20, EstDuration: sim.Milliseconds(340),
		})
		splits = append(splits, split)
	}
	for j := 0; j < parts/2; j++ {
		drop := dask.TaskKey(tupleKey("drop_by_shallow_copy", pseudoHash("drop", m), m*w.Partitions/2+j))
		g.Add(&dask.TaskSpec{
			Key: drop, Deps: []dask.TaskKey{splits[2*j], splits[2*j+1]},
			OutputSize: 52 << 20, EstDuration: sim.Milliseconds(320),
		})
		drops = append(drops, drop)
	}
	concatTrain := dask.TaskKey(fmt.Sprintf("concat-train-%s", pseudoHash("concat-train", m)))
	concatTest := dask.TaskKey(fmt.Sprintf("concat-test-%s", pseudoHash("concat-test", m)))
	g.Add(&dask.TaskSpec{
		Key: concatTrain, Deps: drops,
		OutputSize: 250 << 20, EstDuration: sim.Milliseconds(650),
	})
	g.Add(&dask.TaskSpec{
		Key: concatTest, Deps: drops,
		OutputSize: 80 << 20, EstDuration: sim.Milliseconds(400),
	})
	if m == w.Months-1 {
		// The short final month converts its concatenations to frames.
		g.Add(&dask.TaskSpec{
			Key: w.trainKey(m), Deps: []dask.TaskKey{concatTrain},
			OutputSize: 250 << 20, EstDuration: sim.Milliseconds(300),
		})
		g.Add(&dask.TaskSpec{
			Key: w.testKey(m), Deps: []dask.TaskKey{concatTest},
			OutputSize: 80 << 20, EstDuration: sim.Milliseconds(250),
		})
	}
	return g
}

// trainGraph builds graph 73: one pinned trainer per worker (xgboost.dask
// starts native training inside one long task per worker; the allreduce
// happens in XGBoost's own communicator, not as Dask transfers) plus a
// model-combination task.
func (w *XGBoost) trainGraph() *dask.Graph {
	g := dask.NewGraph(w.Months + 1)
	workers := w.workers
	if workers == nil {
		panic("workloads: XGBoost.Run must set workers before trainGraph")
	}
	// xgboost.dask occupies every thread of every worker with native
	// training (nthread = threads-per-worker): one pinned trainer task per
	// thread slot, all running for the whole training phase.
	threads := w.trainThreads()
	var trains []dask.TaskKey
	slot := 0
	for t := range workers {
		for th := 0; th < threads; th++ {
			var deps []dask.TaskKey
			for m := slot; m < w.Months; m += len(workers) * threads {
				key := w.trainKey(m)
				deps = append(deps, key)
				g.AddExternal(key)
			}
			key := dask.TaskKey(fmt.Sprintf("train-xgboost-%s", pseudoHash("train", t, th)))
			g.Add(&dask.TaskSpec{
				Key: key, Deps: deps,
				OutputSize:   8 << 20, // per-thread booster partial
				Restrictions: []string{workers[t]},
				Run: func(ctx *dask.TaskContext) {
					// Native training; checkpoints go to node-local
					// scratch, outside the instrumented PFS (so Table I's
					// file count stays at the 61 parquet inputs).
					ctx.Compute(sim.Seconds(ctx.RNG().Uniform(255, 295)))
				},
			})
			trains = append(trains, key)
			slot++
		}
	}
	g.Add(&dask.TaskSpec{
		Key: modelKey, Deps: trains,
		OutputSize: 60 << 20, EstDuration: sim.Seconds(2),
	})
	return g
}

// trainThreads returns the per-worker thread count captured at Run time.
func (w *XGBoost) trainThreads() int {
	if w.threads > 0 {
		return w.threads
	}
	return 8
}

var modelKey = dask.TaskKey("model-combine-" + pseudoHash("model"))

// predictGraph builds graph 74: per-month test-set prediction plus a
// summary writing the final report.
func (w *XGBoost) predictGraph() *dask.Graph {
	g := dask.NewGraph(w.Months + 2)
	g.AddExternal(modelKey)
	var preds []dask.TaskKey
	for i := 0; i < 61; i++ {
		test := w.testKey(i)
		g.AddExternal(test)
		key := dask.TaskKey(tupleKey("predict", pseudoHash("predict", i), i))
		g.Add(&dask.TaskSpec{
			Key: key, Deps: []dask.TaskKey{modelKey, test},
			OutputSize: 1 << 20, EstDuration: sim.Milliseconds(1500),
		})
		preds = append(preds, key)
	}
	g.Add(&dask.TaskSpec{
		Key: dask.TaskKey("summarize-" + pseudoHash("xgb-summary")), Deps: preds,
		OutputSize: 128 << 10, EstDuration: sim.Milliseconds(500),
	})
	return g
}
