package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taskprov/internal/core"
	"taskprov/internal/workloads"
)

// writeRun produces one persisted ImageProcessing run for CLI tests.
func writeRun(t *testing.T) string {
	t.Helper()
	wf, err := workloads.New("imageprocessing")
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Run(workloads.DefaultSession("imageprocessing", "cli-test", 6), wf)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "imageprocessing-0006")
	if err := art.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCLICommands(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := writeRun(t)

	if err := cmdTable1([]string{dir}); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := cmdPhases([]string{dir}); err != nil {
		t.Fatalf("phases: %v", err)
	}
	if err := cmdIOTimeline([]string{dir, "-bins", "40"}); err != nil {
		t.Fatalf("iotimeline: %v", err)
	}
	if err := cmdComm([]string{dir}); err != nil {
		t.Fatalf("comm: %v", err)
	}
	if err := cmdTasks([]string{dir, "-top", "5"}); err != nil {
		t.Fatalf("tasks: %v", err)
	}
	if err := cmdWarnings([]string{dir, "-bin", "20"}); err != nil {
		t.Fatalf("warnings: %v", err)
	}
	if err := cmdLineage([]string{dir, "-prefix", "imread"}); err != nil {
		t.Fatalf("lineage: %v", err)
	}
	if err := cmdCritPath([]string{dir}); err != nil {
		t.Fatalf("critpath: %v", err)
	}
	if err := cmdWhatIf([]string{dir, "-scenario", "baseline", "-scenario", "net=0.5 pfs=2"}); err != nil {
		t.Fatalf("whatif: %v", err)
	}
	for _, view := range []string{"executions", "transitions", "transfers", "warnings", "dxt", "posix", "taskmeta", "heartbeats", "taskio", "critpath"} {
		// Redirect stdout noise for the big CSVs.
		old := os.Stdout
		null, _ := os.Open(os.DevNull)
		devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		os.Stdout = devnull
		err := cmdExport([]string{dir, "-view", view})
		os.Stdout = old
		_ = null.Close()
		_ = devnull.Close()
		if err != nil {
			t.Fatalf("export %s: %v", view, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdTable1([]string{filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("missing dir accepted")
	}
	dir := t.TempDir() // empty, no metadata.json
	if err := cmdComm([]string{dir}); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestCLILineageValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := writeRun(t)
	if err := cmdLineage([]string{dir}); err == nil {
		t.Fatal("lineage without key/prefix accepted")
	}
	if err := cmdLineage([]string{dir, "-key", "ghost"}); err == nil {
		t.Fatal("lineage for unknown key accepted")
	}
	err := cmdExport([]string{dir, "-view", "bogus"})
	if err == nil {
		t.Fatal("unknown view accepted")
	}
	// The error must name the valid views so the user can self-correct.
	if !strings.Contains(err.Error(), "valid:") || !strings.Contains(err.Error(), "critpath") {
		t.Fatalf("unknown-view error does not list valid views: %v", err)
	}
	if err := cmdWhatIf([]string{dir, "-scenario", "workers=0"}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestCLIWindowCompareDarshanSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("full workflow run")
	}
	dir := writeRun(t)
	if err := cmdWindow([]string{dir, "-from", "0", "-to", "20"}); err != nil {
		t.Fatalf("window: %v", err)
	}
	if err := cmdCompare([]string{dir, dir}); err != nil {
		t.Fatalf("compare: %v", err)
	}
	if err := cmdCompare([]string{dir}); err == nil {
		t.Fatal("compare with one dir accepted")
	}
	if err := cmdDarshan([]string{dir, "-top", "3"}); err != nil {
		t.Fatalf("darshan: %v", err)
	}
	out := filepath.Join(t.TempDir(), "fig.svg")
	for _, fig := range []string{"iotimeline", "comm", "warnings", "phases", "critpath"} {
		if err := cmdSVG([]string{dir, "-figure", fig, "-o", out}); err != nil {
			t.Fatalf("svg %s: %v", fig, err)
		}
		if st, err := os.Stat(out); err != nil || st.Size() == 0 {
			t.Fatalf("svg %s produced no file", fig)
		}
	}
	if err := cmdSVG([]string{dir, "-figure", "bogus", "-o", out}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := cmdCorrelate([]string{dir, "-bin", "10"}); err != nil {
		t.Fatalf("correlate: %v", err)
	}
	if err := cmdHeatmap([]string{dir}); err != nil {
		t.Fatalf("heatmap: %v", err)
	}
	if err := cmdMetadata([]string{dir}); err != nil {
		t.Fatalf("metadata: %v", err)
	}
}
