package mofka

import (
	"encoding/json"
	"fmt"

	"taskprov/internal/mochi/mercury"
)

// RPC names exposed by RegisterRPCs.
const (
	rpcCreateTopic = "mofka.create_topic"
	rpcTopics      = "mofka.topics"
	rpcTopicInfo   = "mofka.topic_info"
	rpcPush        = "mofka.push"
	rpcPull        = "mofka.pull"
	rpcCommit      = "mofka.commit"
	rpcCursor      = "mofka.cursor"
	rpcPartInfo    = "mofka.partition_info"
	rpcPing        = "mofka.ping"
)

type pushRequest struct {
	Topic     string            `json:"topic"`
	Partition int               `json:"partition"`
	Metas     []json.RawMessage `json:"metas"`
	Datas     [][]byte          `json:"datas"`
}

type pullRequest struct {
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	From      uint64 `json:"from"`
	Max       int    `json:"max"`
	WithData  bool   `json:"with_data"`
}

type pullResponse struct {
	Events []Event `json:"events"`
}

type commitRequest struct {
	Consumer  string `json:"consumer"`
	Topic     string `json:"topic"`
	Partition int    `json:"partition"`
	Next      uint64 `json:"next"`
}

type topicInfo struct {
	Name       string `json:"name"`
	Partitions int    `json:"partitions"`
	Events     uint64 `json:"events"`
}

// RegisterRPCs exposes the broker on a Mercury endpoint, making it usable as
// a standalone daemon (cmd/mofkad) or a shared in-process service.
func (b *Broker) RegisterRPCs(ep *mercury.Endpoint) {
	ep.Register(rpcCreateTopic, func(req []byte) ([]byte, error) {
		var cfg TopicConfig
		if err := json.Unmarshal(req, &cfg); err != nil {
			return nil, err
		}
		if _, err := b.OpenOrCreateTopic(cfg); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	})
	ep.Register(rpcTopics, func([]byte) ([]byte, error) {
		return json.Marshal(b.Topics())
	})
	ep.Register(rpcTopicInfo, func(req []byte) ([]byte, error) {
		var name string
		if err := json.Unmarshal(req, &name); err != nil {
			return nil, err
		}
		t, err := b.OpenTopic(name)
		if err != nil {
			return nil, err
		}
		return json.Marshal(topicInfo{Name: t.Name(), Partitions: t.Partitions(), Events: t.Events()})
	})
	ep.Register(rpcPush, func(req []byte) ([]byte, error) {
		var pr pushRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		t, err := b.OpenTopic(pr.Topic)
		if err != nil {
			return nil, err
		}
		p, err := t.Partition(pr.Partition)
		if err != nil {
			return nil, err
		}
		metas := make([][]byte, len(pr.Metas))
		for i, m := range pr.Metas {
			metas[i] = m
		}
		if err := p.appendBatch(metas, pr.Datas); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	})
	ep.Register(rpcPull, func(req []byte) ([]byte, error) {
		var pr pullRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		t, err := b.OpenTopic(pr.Topic)
		if err != nil {
			return nil, err
		}
		p, err := t.Partition(pr.Partition)
		if err != nil {
			return nil, err
		}
		evs, err := p.read(pr.From, pr.Max, pr.WithData)
		if err != nil {
			return nil, err
		}
		return json.Marshal(pullResponse{Events: evs})
	})
	ep.Register(rpcCommit, func(req []byte) ([]byte, error) {
		var cr commitRequest
		if err := json.Unmarshal(req, &cr); err != nil {
			return nil, err
		}
		if err := b.CommitCursor(cr.Consumer, cr.Topic, cr.Partition, cr.Next); err != nil {
			return nil, err
		}
		return []byte(`{}`), nil
	})
	ep.Register(rpcCursor, func(req []byte) ([]byte, error) {
		var cr commitRequest
		if err := json.Unmarshal(req, &cr); err != nil {
			return nil, err
		}
		return json.Marshal(b.LoadCursor(cr.Consumer, cr.Topic, cr.Partition))
	})
	ep.Register(rpcPartInfo, func(req []byte) ([]byte, error) {
		var pr pullRequest
		if err := json.Unmarshal(req, &pr); err != nil {
			return nil, err
		}
		t, err := b.OpenTopic(pr.Topic)
		if err != nil {
			return nil, err
		}
		p, err := t.Partition(pr.Partition)
		if err != nil {
			return nil, err
		}
		return json.Marshal(p.Length())
	})
	ep.Register(rpcPing, func([]byte) ([]byte, error) {
		if b.IsClosed() {
			return nil, ErrClosed
		}
		return []byte(`{}`), nil
	})
}

// Remote is a client for a broker reached through a Mercury caller.
type Remote struct {
	c mercury.Caller
}

// NewRemote wraps a Mercury caller as a Mofka client.
func NewRemote(c mercury.Caller) *Remote { return &Remote{c: c} }

func (r *Remote) call(rpc string, req, resp any) error {
	reqb, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("mofka: encode %s: %w", rpc, err)
	}
	respb, err := r.c.Call(rpc, reqb)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(respb, resp)
}

// CreateTopic creates (or opens) a topic on the remote broker.
func (r *Remote) CreateTopic(cfg TopicConfig) error {
	return r.call(rpcCreateTopic, cfg, nil)
}

// Topics lists remote topics.
func (r *Remote) Topics() ([]string, error) {
	var out []string
	err := r.call(rpcTopics, struct{}{}, &out)
	return out, err
}

// TopicInfo returns partition and event counts for a topic.
func (r *Remote) TopicInfo(name string) (partitions int, events uint64, err error) {
	var info topicInfo
	if err := r.call(rpcTopicInfo, name, &info); err != nil {
		return 0, 0, err
	}
	return info.Partitions, info.Events, nil
}

// PushBatch appends a batch of events to one partition.
func (r *Remote) PushBatch(topic string, partition int, metas [][]byte, datas [][]byte) error {
	pr := pushRequest{Topic: topic, Partition: partition, Datas: datas}
	for _, m := range metas {
		pr.Metas = append(pr.Metas, m)
	}
	return r.call(rpcPush, pr, nil)
}

// Pull fetches up to max events of one partition starting at offset from.
func (r *Remote) Pull(topic string, partition int, from uint64, max int, withData bool) ([]Event, error) {
	var resp pullResponse
	err := r.call(rpcPull, pullRequest{Topic: topic, Partition: partition, From: from, Max: max, WithData: withData}, &resp)
	return resp.Events, err
}

// Commit records a consumer cursor remotely.
func (r *Remote) Commit(consumer, topic string, partition int, next uint64) error {
	return r.call(rpcCommit, commitRequest{Consumer: consumer, Topic: topic, Partition: partition, Next: next}, nil)
}

// Cursor fetches a consumer's committed cursor.
func (r *Remote) Cursor(consumer, topic string, partition int) (uint64, error) {
	var next uint64
	err := r.call(rpcCursor, commitRequest{Consumer: consumer, Topic: topic, Partition: partition}, &next)
	return next, err
}

// PartitionLength returns the number of events in one remote partition.
func (r *Remote) PartitionLength(topic string, partition int) (uint64, error) {
	var n uint64
	err := r.call(rpcPartInfo, pullRequest{Topic: topic, Partition: partition}, &n)
	return n, err
}

// Ping probes remote liveness; the cluster gateway's failure detector calls
// it on every sweep.
func (r *Remote) Ping() error {
	return r.call(rpcPing, struct{}{}, nil)
}
