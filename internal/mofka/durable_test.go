package mofka

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taskprov/internal/mofka/wal"
)

func newDurable(t *testing.T, dir string) *Broker {
	t.Helper()
	b, err := NewDurableBroker(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// drainAll pulls every event of a topic (metadata and data).
func drainAll(t *testing.T, b *Broker, topic string) []Event {
	t.Helper()
	tp, err := b.OpenTopic(topic)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tp.NewConsumer(ConsumerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestDurableRecoveryAcrossRestart is the satellite recovery scenario:
// create topics, push, commit cursors, close, reopen from the same DataDir,
// and assert topics, offsets, event contents, and cursors are identical.
func TestDurableRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b := newDurable(t, dir)

	execs, err := b.CreateTopic(TopicConfig{Name: "task-executions", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic(TopicConfig{Name: "warnings"}); err != nil {
		t.Fatal(err)
	}

	p := execs.NewProducer(ProducerOptions{BatchSize: 4})
	for i := 0; i < 20; i++ {
		if err := p.Push(Metadata{"i": i, "key": fmt.Sprintf("task-%d", i)}, []byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := execs.NewConsumer(ConsumerOptions{Name: "analysis"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ev, ok, err := c.Pull()
		if err != nil || !ok {
			t.Fatalf("pull %d: ok=%v err=%v", i, ok, err)
		}
		if err := c.Commit(ev); err != nil {
			t.Fatal(err)
		}
	}
	liveEvents := drainAll(t, b, "task-executions")
	liveCursor0 := b.LoadCursor("analysis", "task-executions", 0)
	liveCursor1 := b.LoadCursor("analysis", "task-executions", 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh broker on the same directory.
	b2 := newDurable(t, dir)
	defer b2.Close()
	if got := b2.Topics(); len(got) != 2 || got[0] != "task-executions" || got[1] != "warnings" {
		t.Fatalf("recovered topics = %v", got)
	}
	tp, err := b2.OpenTopic("task-executions")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Partitions() != 2 {
		t.Fatalf("recovered partitions = %d", tp.Partitions())
	}
	if tp.Events() != 20 {
		t.Fatalf("recovered events = %d, want 20", tp.Events())
	}

	recEvents := drainAll(t, b2, "task-executions")
	if len(recEvents) != len(liveEvents) {
		t.Fatalf("recovered %d events, live had %d", len(recEvents), len(liveEvents))
	}
	for i := range liveEvents {
		l, r := liveEvents[i], recEvents[i]
		if l.Partition != r.Partition || l.ID != r.ID ||
			string(l.Metadata) != string(r.Metadata) || string(l.Data) != string(r.Data) {
			t.Fatalf("event %d differs: live %+v vs recovered %+v", i, l, r)
		}
	}

	if got := b2.LoadCursor("analysis", "task-executions", 0); got != liveCursor0 {
		t.Fatalf("cursor p0 = %d, want %d", got, liveCursor0)
	}
	if got := b2.LoadCursor("analysis", "task-executions", 1); got != liveCursor1 {
		t.Fatalf("cursor p1 = %d, want %d", got, liveCursor1)
	}
	// A resuming consumer picks up exactly where the committed cursors left
	// off: 20 pushed, 6 consumed-and-committed.
	rc, err := tp.NewConsumer(ConsumerOptions{Name: "analysis", FromCommitted: true})
	if err != nil {
		t.Fatal(err)
	}
	rest, err := rc.Drain()
	if err != nil || len(rest) != 14 {
		t.Fatalf("resumed drain = %d events (err %v), want 14", len(rest), err)
	}
}

// TestDurableAppendsAfterRecovery verifies the log stays appendable with
// dense offsets after a reopen.
func TestDurableAppendsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	b := newDurable(t, dir)
	tp, err := b.CreateTopic(TopicConfig{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 0; i < 5; i++ {
		if err := p.Push(Metadata{"i": i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	b2 := newDurable(t, dir)
	defer b2.Close()
	tp2, err := b2.OpenTopic("t")
	if err != nil {
		t.Fatal(err)
	}
	p2 := tp2.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 5; i < 10; i++ {
		if err := p2.Push(Metadata{"i": i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	evs := drainAll(t, b2, "t")
	if len(evs) != 10 {
		t.Fatalf("events after recovered append = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(i) {
			t.Fatalf("event %d has ID %d: offsets not dense across restart", i, ev.ID)
		}
	}
}

// TestDurableSurvivesTornTail simulates a kill -9 during a produce workload:
// the broker is abandoned without Close, the newest segment gets a garbage
// tail (a write cut off mid-record), and a reopen must recover every flushed
// event intact.
func TestDurableSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	b := newDurable(t, dir) // default SyncBatch: flushed batches are on disk
	tp, err := b.CreateTopic(TopicConfig{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	p := tp.NewProducer(ProducerOptions{BatchSize: 8})
	for i := 0; i < 32; i++ {
		if err := p.Push(Metadata{"i": i}, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" here. Scribble a torn record onto the
	// newest segment, as an interrupted append would leave behind.
	segs, err := filepath.Glob(filepath.Join(dir, "topics", "t", "p0000", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte{0x13, 0x37, 0xde, 0xad})
	_ = f.Close()

	b2 := newDurable(t, dir)
	defer b2.Close()
	evs := drainAll(t, b2, "t")
	if len(evs) != 32 {
		t.Fatalf("recovered %d events, want all 32 flushed ones", len(evs))
	}
	for i, ev := range evs {
		m, err := ev.ParseMetadata()
		if err != nil || int(m["i"].(float64)) != i || string(ev.Data) != "payload" {
			t.Fatalf("event %d corrupt after torn-tail recovery: %v %q (%v)", i, m, ev.Data, err)
		}
	}
}

// TestBrokerCloseUnblocksPullBlocking is the goroutine-leak fix: a blocked
// consumer must return ErrClosed promptly on Close instead of waiting out
// its (long) timeout.
func TestBrokerCloseUnblocksPullBlocking(t *testing.T) {
	b := NewStandaloneBroker()
	tp, err := b.CreateTopic(TopicConfig{Name: "t", Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tp.NewConsumer(ConsumerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		ok  bool
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, ok, err := c.PullBlocking(30 * time.Second)
		done <- result{ok, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the consumer block
	start := time.Now()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.ok || !errors.Is(r.err, ErrClosed) {
			t.Fatalf("PullBlocking after Close: ok=%v err=%v, want ErrClosed", r.ok, r.err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("PullBlocking took %v to notice Close", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PullBlocking still blocked 5s after Close")
	}
}

// TestCloseDrainsBufferedEventsFirst: events published before Close must
// still be served by PullBlocking before it reports ErrClosed.
func TestCloseDrainsBufferedEventsFirst(t *testing.T) {
	b := NewStandaloneBroker()
	tp, _ := b.CreateTopic(TopicConfig{Name: "t"})
	p := tp.NewProducer(ProducerOptions{})
	p.Push(Metadata{"x": 1}, nil)
	p.Close()
	b.Close()
	c, _ := tp.NewConsumer(ConsumerOptions{})
	ev, ok, err := c.PullBlocking(time.Second)
	if err != nil || !ok {
		t.Fatalf("pre-close event not served: ok=%v err=%v", ok, err)
	}
	if len(ev.Metadata) == 0 {
		t.Fatal("empty event")
	}
	if _, ok, err := c.PullBlocking(time.Second); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: ok=%v err=%v, want ErrClosed", ok, err)
	}
}

// TestClosedBrokerRejectsWrites: appends and topic creation fail after Close.
func TestClosedBrokerRejectsWrites(t *testing.T) {
	b := NewStandaloneBroker()
	tp, _ := b.CreateTopic(TopicConfig{Name: "t"})
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	b.Close()
	if err := p.Push(Metadata{"x": 1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if _, err := b.CreateTopic(TopicConfig{Name: "u"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

// TestPostMortemOpenIsReadOnly: OpenPostMortem replays everything but leaves
// the directory byte-identical, even when the tail is torn.
func TestPostMortemOpenIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	b := newDurable(t, dir)
	tp, _ := b.CreateTopic(TopicConfig{Name: "t"})
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 0; i < 7; i++ {
		p.Push(Metadata{"i": i}, nil)
	}
	c, _ := tp.NewConsumer(ConsumerOptions{Name: "mon"})
	ev, _, _ := c.Pull()
	c.Commit(ev)
	b.Close()
	// Torn tail, as left by a crash.
	segs, _ := filepath.Glob(filepath.Join(dir, "topics", "t", "p0000", "*.seg"))
	f, _ := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	_, _ = f.Write([]byte("torn"))
	_ = f.Close()
	before, _ := os.Stat(segs[len(segs)-1])

	pm, err := OpenPostMortem(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	if evs := drainAll(t, pm, "t"); len(evs) != 7 {
		t.Fatalf("post-mortem drain = %d events", len(evs))
	}
	if got := pm.LoadCursor("mon", "t", 0); got != 1 {
		t.Fatalf("post-mortem cursor = %d", got)
	}
	after, _ := os.Stat(segs[len(segs)-1])
	if after.Size() != before.Size() {
		t.Fatalf("post-mortem open mutated the log: %d -> %d bytes", before.Size(), after.Size())
	}
	// Post-mortem brokers refuse appends through the producer path too.
	tp2, _ := pm.OpenTopic("t")
	p2 := tp2.NewProducer(ProducerOptions{BatchSize: 1})
	if err := p2.Push(Metadata{"x": 1}, nil); err == nil {
		t.Fatal("append on post-mortem broker succeeded")
	}
}

// TestDurableTopicNameValidation: path-hostile topic names are rejected
// rather than writing outside the data dir.
func TestDurableTopicNameValidation(t *testing.T) {
	b := newDurable(t, t.TempDir())
	defer b.Close()
	for _, name := range []string{"a/b", `a\b`, "..", "."} {
		if _, err := b.CreateTopic(TopicConfig{Name: name}); err == nil {
			t.Fatalf("topic name %q accepted on durable broker", name)
		}
	}
}

// TestDurableWALOptionsRespected: segment size and retention flow through to
// the partition logs.
func TestDurableWALOptionsRespected(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDurableBroker(Options{
		DataDir: dir,
		WAL:     wal.Options{SegmentBytes: 256, Sync: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := b.CreateTopic(TopicConfig{Name: "t"})
	p := tp.NewProducer(ProducerOptions{BatchSize: 1})
	for i := 0; i < 50; i++ {
		p.Push(Metadata{"i": i, "pad": "xxxxxxxxxxxxxxxx"}, nil)
	}
	b.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "topics", "t", "p0000", "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("SegmentBytes not honored: %d segments", len(segs))
	}
	b2 := newDurable(t, dir)
	defer b2.Close()
	if evs := drainAll(t, b2, "t"); len(evs) != 50 {
		t.Fatalf("recovered %d events across segments", len(evs))
	}
}
