package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"taskprov/internal/dask"
	"taskprov/internal/pfs"
	"taskprov/internal/platform"
)

// RunMetadata is the serialized provenance chart of one run (Fig. 1): the
// hardware-infrastructure layer, the system-software/job-configuration
// layer, and the application layer's static configuration. Everything a
// reproducibility study needs to re-create or explain the run's context.
type RunMetadata struct {
	// Identity.
	JobID    string `json:"job_id"`
	Workflow string `json:"workflow"`
	Seed     uint64 `json:"seed"`

	// Hardware infrastructure layer.
	Platform platform.Description `json:"platform"`
	Storage  pfs.Description      `json:"storage"`

	// System software and job configuration layer.
	Software SoftwareStack `json:"software"`
	Job      JobConfig     `json:"job"`

	// Application layer: WMS configuration (distributed.yaml) and the
	// instrumentation configuration.
	DaskConfig      DaskConfigDescription `json:"dask_config"`
	Instrumentation InstrumentationConfig `json:"instrumentation"`

	// Outcome.
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	WallSeconds  float64 `json:"wall_seconds"`

	// Attempt/ResumedFrom record the session incarnation for resumed runs
	// (see internal/resume): set from attempt 2 on, absent for runs that
	// never crashed.
	Attempt     int `json:"attempt,omitempty"`
	ResumedFrom int `json:"resumed_from,omitempty"`
}

// SoftwareStack is the system-software layer: OS, loaded modules, and
// installed packages with versions.
type SoftwareStack struct {
	OS       string            `json:"os"`
	Modules  []string          `json:"modules"`
	Packages map[string]string `json:"packages"`
}

// DefaultSoftwareStack describes this reproduction's synthetic stack,
// mirroring what the paper records on Polaris.
func DefaultSoftwareStack() SoftwareStack {
	return SoftwareStack{
		OS:      "sles15-sp5-sim",
		Modules: []string{"PrgEnv-gnu", "cray-mpich/8.1", "cudatoolkit/12.2"},
		Packages: map[string]string{
			"dask":        "2024.5-sim",
			"distributed": "2024.5-sim",
			"darshan":     "3.4-sim+pthread-dxt",
			"mofka":       "0.3-sim",
			"mochi":       "0.14-sim",
		},
	}
}

// JobConfig is the job-scheduler layer: requested/allocated resources.
type JobConfig struct {
	Nodes            int    `json:"nodes"`
	WorkersPerNode   int    `json:"workers_per_node"`
	ThreadsPerWorker int    `json:"threads_per_worker"`
	Queue            string `json:"queue"`
	Script           string `json:"script"`
}

// DaskConfigDescription is the serializable subset of the WMS config (the
// distributed.yaml values the paper lists: timeouts, heartbeat interval,
// communication settings).
type DaskConfigDescription struct {
	HeartbeatIntervalSec   float64 `json:"heartbeat_interval_sec"`
	WorkStealing           bool    `json:"work_stealing"`
	StealIntervalSec       float64 `json:"steal_interval_sec"`
	EventLoopThresholdSec  float64 `json:"event_loop_threshold_sec"`
	DefaultTaskDurationSec float64 `json:"default_task_duration_sec"`
	// ProxyThresholdBytes/ProxyPrefetch record the pass-by-reference data
	// plane configuration; zero threshold means direct transfers only.
	ProxyThresholdBytes int64 `json:"proxy_threshold_bytes,omitempty"`
	ProxyPrefetch       bool  `json:"proxy_prefetch,omitempty"`
}

// DescribeDaskConfig extracts the serializable view of a dask.Config.
func DescribeDaskConfig(c dask.Config) DaskConfigDescription {
	return DaskConfigDescription{
		HeartbeatIntervalSec:   c.HeartbeatInterval.Seconds(),
		WorkStealing:           c.WorkStealing,
		StealIntervalSec:       c.StealInterval.Seconds(),
		EventLoopThresholdSec:  c.EventLoopMonitorThreshold.Seconds(),
		DefaultTaskDurationSec: c.DefaultTaskDuration.Seconds(),
		ProxyThresholdBytes:    c.ProxyThresholdBytes,
		ProxyPrefetch:          c.ProxyPrefetch,
	}
}

// InstrumentationConfig records how collection itself was configured —
// needed to explain gaps like DXT truncation (the paper's footnote 9 and
// §V "identify gaps in the metadata collection").
type InstrumentationConfig struct {
	DXTEnabled        bool `json:"dxt_enabled"`
	DXTBufferSegments int  `json:"dxt_buffer_segments"`
	MofkaBatchSize    int  `json:"mofka_batch_size"`
	// MofkaDataDir is the durable event-log directory, empty when the run's
	// provenance stream was in-memory only.
	MofkaDataDir string `json:"mofka_data_dir,omitempty"`
	// ClusterBrokers/ClusterReplication record the sharded Mofka deployment
	// shape (internal/mofka/cluster); zero for single-broker runs.
	ClusterBrokers     int `json:"cluster_brokers,omitempty"`
	ClusterReplication int `json:"cluster_replication,omitempty"`
	// Chaos is the fault-injection spec the run was executed under (see
	// internal/chaos), empty for fault-free runs. Recording it makes
	// degraded runs self-describing post-mortem.
	Chaos string `json:"chaos,omitempty"`
	// Speculation records the hedged-execution policy the run was executed
	// under (zero when speculation was off), so a speculation timeline is
	// interpretable post-mortem without the session config.
	SpeculationEnabled  bool    `json:"speculation_enabled,omitempty"`
	SpeculationMax      int     `json:"speculation_max,omitempty"`
	SpeculationQuantile float64 `json:"speculation_quantile,omitempty"`
	SpeculationBudget   int     `json:"speculation_budget,omitempty"`
	// RetryBudget is the per-run Mercury retry allowance (0 when the adaptive
	// retry layer was not engaged).
	RetryBudget int `json:"retry_budget,omitempty"`
}

// EncodeMetadata serializes run metadata as pretty JSON.
func EncodeMetadata(m RunMetadata) []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("core: metadata encode: %v", err))
	}
	return b
}

// DecodeMetadata parses run metadata JSON.
func DecodeMetadata(b []byte) (RunMetadata, error) {
	var m RunMetadata
	if err := json.Unmarshal(b, &m); err != nil {
		return RunMetadata{}, fmt.Errorf("core: metadata decode: %w", err)
	}
	return m, nil
}

// RenderChart formats the run metadata as the paper's Fig. 1 layered
// provenance chart: hardware infrastructure, system software & job
// configuration, and the application layer.
func (m RunMetadata) RenderChart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "provenance chart — %s (workflow %s, seed %d)\n", m.JobID, m.Workflow, m.Seed)
	fmt.Fprintf(&b, "├─ hardware infrastructure\n")
	fmt.Fprintf(&b, "│   ├─ platform: %s (%d nodes × %d cores, %d GPUs/node, %d switches)\n",
		m.Platform.Platform, m.Platform.Nodes, m.Platform.CoresPerNode,
		m.Platform.GPUsPerNode, m.Platform.Switches)
	for _, n := range m.Platform.NodeList {
		fmt.Fprintf(&b, "│   │   ├─ %s on switch %d (speed %.3f)\n", n.Hostname, n.Switch, n.Speed)
	}
	fmt.Fprintf(&b, "│   └─ storage: %s (%d OSTs, stripe %d×%dB, %.1f GB/s/OST)\n",
		m.Storage.Mount, m.Storage.OSTs, m.Storage.StripeCount, m.Storage.StripeSize,
		m.Storage.OSTBandwidth/1e9)
	fmt.Fprintf(&b, "├─ system software & job configuration\n")
	fmt.Fprintf(&b, "│   ├─ os: %s\n", m.Software.OS)
	fmt.Fprintf(&b, "│   ├─ modules: %s\n", strings.Join(m.Software.Modules, ", "))
	pkgs := make([]string, 0, len(m.Software.Packages))
	for k := range m.Software.Packages {
		pkgs = append(pkgs, k)
	}
	sort.Strings(pkgs)
	for _, k := range pkgs {
		fmt.Fprintf(&b, "│   ├─ package: %s %s\n", k, m.Software.Packages[k])
	}
	fmt.Fprintf(&b, "│   ├─ job: %d nodes × %d workers × %d threads, queue %s\n",
		m.Job.Nodes, m.Job.WorkersPerNode, m.Job.ThreadsPerWorker, m.Job.Queue)
	fmt.Fprintf(&b, "│   └─ job script:\n")
	for _, line := range strings.Split(strings.TrimRight(m.Job.Script, "\n"), "\n") {
		fmt.Fprintf(&b, "│       %s\n", line)
	}
	fmt.Fprintf(&b, "└─ application layer\n")
	fmt.Fprintf(&b, "    ├─ distributed.yaml: heartbeat %.3fs, stealing %v (%.3fs), loop-monitor %.1fs\n",
		m.DaskConfig.HeartbeatIntervalSec, m.DaskConfig.WorkStealing,
		m.DaskConfig.StealIntervalSec, m.DaskConfig.EventLoopThresholdSec)
	durable := ""
	if m.Instrumentation.MofkaDataDir != "" {
		durable = fmt.Sprintf(", durable log %s", m.Instrumentation.MofkaDataDir)
	}
	fmt.Fprintf(&b, "    ├─ instrumentation: DXT=%v (buffer %d segments), mofka batch %d%s\n",
		m.Instrumentation.DXTEnabled, m.Instrumentation.DXTBufferSegments,
		m.Instrumentation.MofkaBatchSize, durable)
	if m.Attempt > 1 {
		fmt.Fprintf(&b, "    ├─ attempt: %d (resumed from attempt %d)\n", m.Attempt, m.ResumedFrom)
	}
	fmt.Fprintf(&b, "    └─ outcome: [%.3fs, %.3fs], wall %.3fs\n",
		m.StartSeconds, m.EndSeconds, m.WallSeconds)
	return b.String()
}
