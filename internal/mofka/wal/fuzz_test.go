package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegName is the single segment the fuzzer plants: base offset 0, the
// name Open's recovery scan expects.
const fuzzSegName = "00000000000000000000.seg"

// validStream frames n records into one byte stream, as a crashed writer
// would have left them on disk.
func validStream(n int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = append(buf, appendFrame(nil,
			Record{Meta: []byte(fmt.Sprintf(`{"i":%d}`, i)), Data: bytes.Repeat([]byte{byte(i)}, 16+i)})...)
	}
	return buf
}

// FuzzWALRecover plants arbitrary bytes as a log's newest segment and opens
// it: whatever a crash (or bit rot) left behind, recovery must not panic,
// must keep exactly the valid frame prefix — truncating the rest as a torn
// tail — and must leave a log that replays cleanly and accepts appends.
func FuzzWALRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add(validStream(3))
	f.Add(validStream(2)[:10])                           // torn mid-header
	f.Add(append(validStream(1), 0xde, 0xad, 0xbe))      // garbage tail
	f.Add(append([]byte{0xff, 0xff}, validStream(1)...)) // garbage head
	corrupt := validStream(2)
	corrupt[len(corrupt)/2] ^= 0x40 // flipped bit inside a payload
	f.Add(corrupt)
	huge := validStream(1)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, fuzzSegName)
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery failed on %d fuzzed bytes: %v", len(data), err)
		}
		defer l.Close()

		// The survivor is the longest valid frame prefix of the input; the
		// rest was truncated and accounted as torn.
		kept, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(kept))+l.TornBytes() != int64(len(data)) {
			t.Fatalf("torn accounting: kept %d + torn %d != input %d",
				len(kept), l.TornBytes(), len(data))
		}
		if !bytes.Equal(kept, data[:len(kept)]) {
			t.Fatalf("recovered segment is not a prefix of the input")
		}

		// Replay must deliver exactly NextOffset records, in offset order,
		// each re-framing to the bytes on disk.
		var n uint64
		var reframed []byte
		if err := l.Replay(0, func(off uint64, rec Record) bool {
			if off != n {
				t.Fatalf("replay offset %d, want %d", off, n)
			}
			n++
			reframed = append(reframed, appendFrame(nil, rec)...)
			return true
		}); err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
		if n != l.NextOffset() {
			t.Fatalf("replayed %d records, NextOffset %d", n, l.NextOffset())
		}
		if !bytes.Equal(reframed, kept) {
			t.Fatalf("replayed records re-frame to %d bytes, disk holds %d",
				len(reframed), len(kept))
		}

		// The recovered log must accept appends and survive a clean reopen
		// with nothing further torn.
		if _, err := l.Append(Record{Meta: []byte(`{"post":"recovery"}`)}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if l2.TornBytes() != 0 {
			t.Fatalf("clean reopen reports %d torn bytes", l2.TornBytes())
		}
		if got := l2.NextOffset(); got != n+1 {
			t.Fatalf("reopen NextOffset %d, want %d", got, n+1)
		}
	})
}
