package yokan

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetEraseBasics(t *testing.T) {
	db := NewDatabase("test")
	db.Put("a", []byte("1"))
	db.Put("b", []byte("2"))
	if v, ok := db.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	db.Put("a", []byte("updated"))
	if v, _ := db.Get("a"); string(v) != "updated" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if db.Count() != 2 {
		t.Fatalf("Count = %d", db.Count())
	}
	if !db.Erase("a") || db.Erase("a") {
		t.Fatal("Erase semantics wrong")
	}
	if db.Exists("a") || !db.Exists("b") {
		t.Fatal("Exists wrong after erase")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := NewDatabase("test")
	orig := []byte("value")
	db.Put("k", orig)
	orig[0] = 'X' // caller mutation must not affect stored value
	v, _ := db.Get("k")
	if string(v) != "value" {
		t.Fatalf("stored value aliased caller slice: %q", v)
	}
	v[0] = 'Y' // returned copy mutation must not affect store
	v2, _ := db.Get("k")
	if string(v2) != "value" {
		t.Fatalf("returned value aliased store: %q", v2)
	}
}

func TestListKeysOrderedWithPrefix(t *testing.T) {
	db := NewDatabase("test")
	for _, k := range []string{"task/3", "task/1", "io/9", "task/2", "zz"} {
		db.Put(k, []byte(k))
	}
	got := db.ListKeys("", "task/", 0)
	want := []string{"task/1", "task/2", "task/3"}
	if len(got) != 3 {
		t.Fatalf("ListKeys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ListKeys = %v, want %v", got, want)
		}
	}
}

func TestListKeysFromAndMax(t *testing.T) {
	db := NewDatabase("test")
	for i := 0; i < 10; i++ {
		db.Put(fmt.Sprintf("k%02d", i), nil)
	}
	got := db.ListKeys("k03", "", 4)
	if len(got) != 4 || got[0] != "k03" || got[3] != "k06" {
		t.Fatalf("ListKeys(from k03, max 4) = %v", got)
	}
}

func TestListKeyVals(t *testing.T) {
	db := NewDatabase("test")
	db.Put("p/a", []byte("va"))
	db.Put("p/b", []byte("vb"))
	db.Put("q/c", []byte("vc"))
	kvs := db.ListKeyVals("", "p/", 0)
	if len(kvs) != 2 || kvs[0].Key != "p/a" || string(kvs[1].Value) != "vb" {
		t.Fatalf("ListKeyVals = %+v", kvs)
	}
}

func TestSkiplistLargeOrderedScan(t *testing.T) {
	db := NewDatabase("big")
	const n = 5000
	perm := make([]string, n)
	for i := range perm {
		perm[i] = fmt.Sprintf("key-%06d", (i*2654435761)%n) // scrambled insert order
	}
	for _, k := range perm {
		db.Put(k, []byte(k))
	}
	keys := db.ListKeys("", "", 0)
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan not in order")
	}
	uniq := map[string]bool{}
	for _, k := range keys {
		uniq[k] = true
	}
	if len(uniq) != n {
		t.Fatalf("scan returned %d unique keys, want %d", len(uniq), n)
	}
}

func TestCollectionStoreLoadUpdateErase(t *testing.T) {
	db := NewDatabase("test")
	c := db.Collection("events")
	id0 := c.Store([]byte("e0"))
	id1 := c.Store([]byte("e1"))
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d, %d", id0, id1)
	}
	if d, ok := c.Load(id1); !ok || string(d) != "e1" {
		t.Fatalf("Load = %q, %v", d, ok)
	}
	if !c.Update(id0, []byte("e0v2")) {
		t.Fatal("Update failed")
	}
	if d, _ := c.Load(id0); string(d) != "e0v2" {
		t.Fatalf("after update: %q", d)
	}
	if !c.Erase(id0) || c.Erase(id0) {
		t.Fatal("Erase semantics wrong")
	}
	if _, ok := c.Load(id0); ok {
		t.Fatal("Load after erase succeeded")
	}
	if c.Size() != 1 {
		t.Fatalf("Size = %d", c.Size())
	}
	if last, ok := c.LastID(); !ok || last != 1 {
		t.Fatalf("LastID = %d, %v", last, ok)
	}
}

func TestCollectionIterSkipsTombstonesAndBounds(t *testing.T) {
	c := NewDatabase("t").Collection("c")
	for i := 0; i < 10; i++ {
		c.Store([]byte{byte(i)})
	}
	c.Erase(4)
	var ids []uint64
	c.Iter(2, 5, func(id uint64, doc []byte) bool {
		ids = append(ids, id)
		return true
	})
	want := []uint64{2, 3, 5, 6, 7}
	if len(ids) != len(want) {
		t.Fatalf("Iter ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Iter ids = %v, want %v", ids, want)
		}
	}
	// Early stop.
	count := 0
	c.Iter(0, 0, func(uint64, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestCollectionEmptyLastID(t *testing.T) {
	c := NewDatabase("t").Collection("c")
	if _, ok := c.LastID(); ok {
		t.Fatal("empty collection reported a LastID")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := NewDatabase("snap")
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	c := db.Collection("docs")
	c.Store([]byte("d0"))
	c.Store([]byte("d1"))
	c.Erase(0)

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(db, got) {
		t.Fatal("restored KV differs")
	}
	rc := got.Collection("docs")
	if _, ok := rc.Load(0); ok {
		t.Fatal("tombstone lost in restore")
	}
	if d, ok := rc.Load(1); !ok || string(d) != "d1" {
		t.Fatalf("restored doc = %q, %v", d, ok)
	}
}

func TestRestoreGarbageFails(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("Restore of garbage succeeded")
	}
}

func TestStoreOpenIsIdempotent(t *testing.T) {
	s := NewStore()
	a := s.Open("db1")
	b := s.Open("db1")
	if a != b {
		t.Fatal("Open returned distinct instances for same name")
	}
	s.Open("db2")
	if len(s.Names()) != 2 {
		t.Fatalf("Names = %v", s.Names())
	}
	s.Drop("db1")
	if len(s.Names()) != 1 {
		t.Fatalf("after Drop: %v", s.Names())
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewDatabase("conc")
	c := db.Collection("docs")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				db.Put(k, []byte(k))
				if v, ok := db.Get(k); !ok || string(v) != k {
					t.Errorf("concurrent get lost %q", k)
					return
				}
				c.Store([]byte(k))
			}
		}(g)
	}
	wg.Wait()
	if db.Count() != 8*200 {
		t.Fatalf("Count = %d", db.Count())
	}
	if c.Size() != 8*200 {
		t.Fatalf("collection Size = %d", c.Size())
	}
}

// Property: the KV store behaves like a map[string][]byte with ordered scan.
func TestKVMatchesModelProperty(t *testing.T) {
	prop := func(ops []struct {
		Key string
		Val []byte
		Del bool
	}) bool {
		db := NewDatabase("model")
		model := map[string][]byte{}
		for _, op := range ops {
			if op.Del {
				delete(model, op.Key)
				db.Erase(op.Key)
			} else {
				model[op.Key] = op.Val
				db.Put(op.Key, op.Val)
			}
		}
		if db.Count() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := db.Get(k)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return sort.StringsAreSorted(db.ListKeys("", "", 0))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
