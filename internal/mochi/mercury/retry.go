package mercury

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrRetryBudgetExhausted marks a call that failed because the shared per-run
// retry budget drained: the retry layer refused to keep hammering a flapping
// endpoint and surfaced the underlying failure cleanly instead.
var ErrRetryBudgetExhausted = errors.New("mercury: retry budget exhausted")

// RetryBudget is a shared, per-run allowance of retry attempts. Every
// RetryCaller wired to the same budget draws from it, so a cluster-wide
// brownout degrades to a bounded number of extra calls followed by clean
// errors — never an unbounded retry storm.
type RetryBudget struct {
	mu        sync.Mutex
	remaining int
}

// NewRetryBudget creates a budget of n retries (n <= 0 means no retries are
// ever granted).
func NewRetryBudget(n int) *RetryBudget {
	if n < 0 {
		n = 0
	}
	return &RetryBudget{remaining: n}
}

// take consumes one retry, reporting whether one was available.
func (b *RetryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	return true
}

// Remaining reports how many retries are left.
func (b *RetryBudget) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// RetryPolicy tunes one destination's adaptive timeout and backoff. The zero
// value is usable: every field falls back to the listed default.
type RetryPolicy struct {
	// EWMAAlpha is the exponential-moving-average weight of the newest
	// latency sample (default 0.3).
	EWMAAlpha float64
	// TimeoutMult scales the EWMA latency into the per-call timeout
	// (default 4): a destination that answers in ~10ms gets a ~40ms deadline
	// instead of the transport's one-size-fits-all default.
	TimeoutMult float64
	// MinTimeout / MaxTimeout clamp the adaptive timeout (defaults 50ms and
	// DefaultCallTimeout). Before the first sample the deadline starts at
	// MaxTimeout — conservative until the destination's latency is known.
	MinTimeout time.Duration
	MaxTimeout time.Duration
	// BaseBackoff is the wait before the first retry; it doubles per attempt
	// up to MaxBackoff (defaults 10ms and 1s), scaled by deterministic
	// jitter in [0.5, 1.5) drawn from a splitmix64 stream seeded by
	// Seed and the destination address.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds the total tries per call, first included
	// (default 4).
	MaxAttempts int
	// Seed keys the jitter stream so retry schedules reproduce per run.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.EWMAAlpha <= 0 || p.EWMAAlpha > 1 {
		p.EWMAAlpha = 0.3
	}
	if p.TimeoutMult <= 1 {
		p.TimeoutMult = 4
	}
	if p.MinTimeout <= 0 {
		p.MinTimeout = 50 * time.Millisecond
	}
	if p.MaxTimeout <= 0 {
		p.MaxTimeout = DefaultCallTimeout
	}
	if p.MinTimeout > p.MaxTimeout {
		p.MinTimeout = p.MaxTimeout
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	return p
}

// TimeoutSetter is implemented by transports whose per-call deadline can be
// tuned (the TCP Client); the retry layer feeds its adaptive timeout through
// it before each call.
type TimeoutSetter interface{ SetTimeout(d time.Duration) }

// RetryStats is a snapshot of a RetryCaller's cumulative activity.
type RetryStats struct {
	Calls        int64 // Call invocations
	Retries      int64 // re-sent attempts (beyond each call's first)
	Exhausted    int64 // calls that failed after MaxAttempts
	BudgetDenied int64 // retries refused because the shared budget drained
}

// RetryCaller wraps a Caller to one destination with the adaptive-timeout,
// capped-exponential-backoff retry policy that replaces one-shot transport
// timeouts. Transport-level failures (timeouts, unreachable endpoints,
// broken connections) are retried; handler failures (RemoteError) and
// unknown-RPC errors are not — the handler ran, and re-running it could
// duplicate side effects. Safe for concurrent use.
type RetryCaller struct {
	inner  Caller
	addr   string
	p      RetryPolicy
	budget *RetryBudget

	// Sleep waits out a backoff (default time.Sleep). Simulations inject a
	// virtual-clock sleep; tests inject a recorder.
	Sleep func(d time.Duration)
	// OnRetry observes every re-sent attempt (attempt counts from 1); the
	// session's retry observer turns these into speculation-topic provenance.
	OnRetry func(addr, rpc string, attempt int, wait time.Duration, err error)
	// OnExhausted observes a call giving up, either after MaxAttempts or —
	// when err wraps ErrRetryBudgetExhausted — because the shared budget
	// drained.
	OnExhausted func(addr, rpc string, attempts int, err error)

	mu    sync.Mutex
	ewma  time.Duration
	jit   uint64
	stats RetryStats
}

// NewRetryCaller wraps inner (which sends to addr) with the retry policy,
// drawing retries from budget (nil means attempts are bounded only by
// MaxAttempts).
func NewRetryCaller(inner Caller, addr string, p RetryPolicy, budget *RetryBudget) *RetryCaller {
	p = p.withDefaults()
	// Fold the address into the seed so every destination gets an
	// independent, reproducible jitter stream.
	seed := p.Seed ^ 0x9e3779b97f4a7c15
	for _, c := range addr {
		seed = (seed ^ uint64(c)) * 1099511628211
	}
	return &RetryCaller{inner: inner, addr: addr, p: p, budget: budget, jit: seed, Sleep: time.Sleep}
}

// Addr returns the destination address this caller retries against.
func (rc *RetryCaller) Addr() string { return rc.addr }

// Stats returns a snapshot of cumulative retry activity.
func (rc *RetryCaller) Stats() RetryStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// Timeout reports the current adaptive per-call timeout.
func (rc *RetryCaller) Timeout() time.Duration {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.timeoutLocked()
}

func (rc *RetryCaller) timeoutLocked() time.Duration {
	if rc.ewma <= 0 {
		return rc.p.MaxTimeout
	}
	d := time.Duration(float64(rc.ewma) * rc.p.TimeoutMult)
	if d < rc.p.MinTimeout {
		d = rc.p.MinTimeout
	}
	if d > rc.p.MaxTimeout {
		d = rc.p.MaxTimeout
	}
	return d
}

// observe folds one successful call's latency into the EWMA.
func (rc *RetryCaller) observe(sample time.Duration) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.ewma <= 0 {
		rc.ewma = sample
		return
	}
	a := rc.p.EWMAAlpha
	rc.ewma = time.Duration(a*float64(sample) + (1-a)*float64(rc.ewma))
}

// splitmix64 advances the jitter stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff computes the wait before retry number attempt (counting from 1):
// capped exponential growth scaled by deterministic jitter in [0.5, 1.5).
func (rc *RetryCaller) backoff(attempt int) time.Duration {
	d := rc.p.BaseBackoff
	for i := 1; i < attempt && d < rc.p.MaxBackoff; i++ {
		d *= 2
	}
	if d > rc.p.MaxBackoff {
		d = rc.p.MaxBackoff
	}
	rc.mu.Lock()
	j := 0.5 + float64(splitmix64(&rc.jit)>>11)/float64(uint64(1)<<53)
	rc.mu.Unlock()
	return time.Duration(float64(d) * j)
}

// retryable classifies an error: transport-level failures may be retried,
// handler results may not.
func retryable(err error) bool {
	var rerr *RemoteError
	if errors.As(err, &rerr) {
		return false // the handler ran; retrying could duplicate effects
	}
	if errors.Is(err, ErrNoRPC) {
		return false // the endpoint is up and does not speak this RPC
	}
	return true
}

// Call implements Caller: it issues the RPC with the adaptive timeout,
// retrying transport failures under the backoff schedule until it succeeds,
// attempts run out, or the shared retry budget drains.
func (rc *RetryCaller) Call(rpc string, req []byte) ([]byte, error) {
	rc.mu.Lock()
	rc.stats.Calls++
	timeout := rc.timeoutLocked()
	rc.mu.Unlock()
	if ts, ok := rc.inner.(TimeoutSetter); ok {
		ts.SetTimeout(timeout)
	}
	for attempt := 1; ; attempt++ {
		start := time.Now()
		resp, err := rc.inner.Call(rpc, req)
		if err == nil {
			rc.observe(time.Since(start))
			return resp, nil
		}
		if !retryable(err) {
			return nil, err
		}
		if attempt >= rc.p.MaxAttempts {
			rc.mu.Lock()
			rc.stats.Exhausted++
			rc.mu.Unlock()
			werr := fmt.Errorf("mercury: %s %q failed after %d attempts: %w", rc.addr, rpc, attempt, err)
			if rc.OnExhausted != nil {
				rc.OnExhausted(rc.addr, rpc, attempt, werr)
			}
			return nil, werr
		}
		if rc.budget != nil && !rc.budget.take() {
			rc.mu.Lock()
			rc.stats.BudgetDenied++
			rc.mu.Unlock()
			werr := fmt.Errorf("mercury: %s %q: %w after %d attempts: %w", rc.addr, rpc, ErrRetryBudgetExhausted, attempt, err)
			if rc.OnExhausted != nil {
				rc.OnExhausted(rc.addr, rpc, attempt, werr)
			}
			return nil, werr
		}
		wait := rc.backoff(attempt)
		rc.mu.Lock()
		rc.stats.Retries++
		rc.mu.Unlock()
		if rc.OnRetry != nil {
			rc.OnRetry(rc.addr, rpc, attempt, wait, err)
		}
		if rc.Sleep != nil && wait > 0 {
			rc.Sleep(wait)
		}
	}
}
