package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"taskprov/internal/dask"
	"taskprov/internal/resume"
	"taskprov/internal/sim"
)

// randomResumeWorkflow submits a sequence of seeded random layered DAGs and
// gathers each graph's leaves — the workload side of the resumption property
// test. Rebuilding the graphs from the seed inside Run keeps the killed and
// resumed incarnations byte-identical to the baseline.
type randomResumeWorkflow struct {
	seed     uint64
	graphs   int
	gathered []int64
	errs     []string
}

func (w *randomResumeWorkflow) Name() string { return "resume-prop" }

func (w *randomResumeWorkflow) Stage(env *Env) {}

func (w *randomResumeWorkflow) Run(p *sim.Proc, cl *dask.Client, env *Env) {
	gen := sim.NewRNG(w.seed).Split("dag")
	for gid := 1; gid <= w.graphs; gid++ {
		g := randomResumeGraph(gid, gen.Split(fmt.Sprintf("g%d", gid)))
		cl.SubmitAndWait(p, g)
		w.errs = append(w.errs, cl.GraphError(gid))
		w.gathered = append(w.gathered, cl.Gather(p, g.Leaves()))
	}
}

// randomResumeGraph builds one layered random DAG with keys namespaced by
// graph ID and a mix of proxied and direct output sizes.
func randomResumeGraph(gid int, rng *sim.RNG) *dask.Graph {
	g := dask.NewGraph(gid)
	layers := rng.IntBetween(2, 4)
	var prev []dask.TaskKey
	for l := 0; l < layers; l++ {
		n := rng.IntBetween(2, 6)
		var cur []dask.TaskKey
		for i := 0; i < n; i++ {
			key := dask.TaskKey(fmt.Sprintf("g%d-%02d-%02d", gid, l, i))
			var deps []dask.TaskKey
			for _, pk := range prev {
				if rng.Bool(0.4) {
					deps = append(deps, pk)
				}
			}
			if l > 0 && len(deps) == 0 {
				deps = append(deps, prev[rng.Intn(len(prev))])
			}
			g.Add(&dask.TaskSpec{
				Key: key, Deps: deps,
				EstDuration: sim.Milliseconds(rng.Uniform(50, 400)),
				// 16 KiB – 512 KiB around the 128 KiB proxy threshold: some
				// outputs are blobs, some direct.
				OutputSize: int64(rng.IntBetween(16, 512)) << 10,
			})
			cur = append(cur, key)
		}
		prev = cur
	}
	return g
}

// TestRandomDAGsSurviveSchedulerKill is the resumption property test: random
// DAGs, a random coordinator kill point, one resume — and whatever the DAG
// or the kill point, the resumed run must reproduce the baseline's gathered
// results, lose no acknowledged output from the merged provenance, never
// re-execute a task whose output was still resolvable, and drain proxy-store
// residency to the baseline's.
func TestRandomDAGsSurviveSchedulerKill(t *testing.T) {
	const trials = 4
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			seed := uint64(4200 + trial)
			cfg := testSession(seed)
			cfg.Dask.ProxyThresholdBytes = 128 << 10

			base := &randomResumeWorkflow{seed: seed, graphs: 2}
			baseArt, err := Run(cfg, base)
			if err != nil {
				t.Fatal(err)
			}
			for i, ge := range base.errs {
				if ge != "" {
					t.Fatalf("baseline graph %d erred: %s", i+1, ge)
				}
			}
			_, baseSizes := drainExecs(t, baseArt)

			frac := sim.NewRNG(seed).Split("kill").Uniform(0.15, 0.85)
			dir := t.TempDir() + "/run"
			kcfg := testSession(seed)
			kcfg.Dask.ProxyThresholdBytes = 128 << 10
			kcfg.MofkaDataDir = dir
			kcfg.ChaosSpec = fmt.Sprintf("scheduler at=%s", time.Duration(float64(baseArt.WallTime)*frac))
			_, err = Run(kcfg, &randomResumeWorkflow{seed: seed, graphs: 2})
			var crash *CrashError
			if !errors.As(err, &crash) {
				t.Fatalf("kill at %.0f%%: expected CrashError, got %v", 100*frac, err)
			}

			pre, err := resume.Reconstruct(dir)
			if err != nil {
				t.Fatal(err)
			}

			rcfg := testSession(seed)
			rcfg.Dask.ProxyThresholdBytes = 128 << 10
			rcfg.ResumeFrom = dir
			resumed := &randomResumeWorkflow{seed: seed, graphs: 2}
			art, err := Run(rcfg, resumed)
			if err != nil {
				t.Fatal(err)
			}

			for i, ge := range resumed.errs {
				if ge != "" {
					t.Fatalf("resumed graph %d erred: %s", i+1, ge)
				}
			}
			if len(resumed.gathered) != len(base.gathered) {
				t.Fatalf("gathered %d graphs, baseline %d", len(resumed.gathered), len(base.gathered))
			}
			for i := range base.gathered {
				if resumed.gathered[i] != base.gathered[i] {
					t.Fatalf("graph %d result: %d bytes, baseline %d", i+1, resumed.gathered[i], base.gathered[i])
				}
			}

			// No acknowledged-output loss: every baseline task is evidenced in
			// the merged provenance, by execution record or by memo.
			counts, sizes := drainExecs(t, art)
			for k, sz := range baseSizes {
				if got, ok := sizes[k]; ok {
					if got != sz {
						t.Fatalf("task %s output = %d, baseline %d", k, got, sz)
					}
					continue
				}
				m, ok := pre.Memos[k]
				if !ok {
					t.Fatalf("merged provenance lost task %s", k)
				}
				if m.Size != sz {
					t.Fatalf("task %s memoized size = %d, baseline %d", k, m.Size, sz)
				}
			}
			// No duplicate side-effecting execution of resolvable outputs.
			for k, m := range pre.Memos {
				if !m.Resolvable {
					continue
				}
				if counts[k] != pre.ExecCounts[k] {
					t.Fatalf("resolvable task %s re-executed: %d records, %d before resume",
						k, counts[k], pre.ExecCounts[k])
				}
			}
			// Residency drains to the baseline.
			if art.Proxy.Resident != baseArt.Proxy.Resident || art.Proxy.Live != baseArt.Proxy.Live {
				t.Fatalf("proxy residency %d bytes/%d blobs, baseline %d/%d",
					art.Proxy.Resident, art.Proxy.Live, baseArt.Proxy.Resident, baseArt.Proxy.Live)
			}
			// And the final filesystem manifest (empty here — no file I/O in
			// the random DAGs — but the check keeps that symmetric too).
			if !reflect.DeepEqual(art.Files, baseArt.Files) {
				t.Fatalf("final filesystem manifest differs from baseline (%d files vs %d)",
					len(art.Files), len(baseArt.Files))
			}
		})
	}
}
