// XGBoost example: run the regression-training workflow and print the
// analyses of Figs. 6, 7, and 8 — the parallel-coordinates task view (the
// longest tasks are the fused parquet reads with >128 MB outputs), the
// warning distribution over time (unresponsive event loop bursts early,
// correlated with those reads), and the full provenance of one
// getitem__get_categories task.
//
//	go run ./examples/xgboost
package main

import (
	"fmt"
	"log"

	"taskprov/internal/core"
	"taskprov/internal/dask"
	"taskprov/internal/perfrecup"
	"taskprov/internal/workloads"
)

func main() {
	wf, err := workloads.New("xgboost")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultSession("xgboost", "xgb-example", 9)
	art, err := core.Run(cfg, wf)
	if err != nil {
		log.Fatal(err)
	}
	row, err := perfrecup.RenderTableIRow(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(row)
	fmt.Printf("wall time: %.1fs\n", art.Meta.WallSeconds)

	fmt.Println("\nFig. 6 — longest tasks (parallel-coordinates view):")
	pc, err := perfrecup.ParallelCoords(art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(perfrecup.RenderParallelCoords(pc, 12))

	fmt.Println("\nFig. 7 — warning distribution over time (100s bins):")
	h, err := perfrecup.WarningHistogram(art, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(perfrecup.RenderWarningHistogram(h, 100))

	// Fig. 8: full lineage of a getitem__get_categories task (the paper
	// shows "('getitem__get_categories-24266c..', 63)" from graph 2).
	var key string
	for i := 0; i < pc.NRows(); i++ {
		k := pc.Col("key").Str(i)
		if dask.KeyPrefix(dask.TaskKey(k)) == "getitem__get_categories" {
			key = k
			break
		}
	}
	if key == "" {
		log.Fatal("no getitem__get_categories task found")
	}
	fmt.Println("\nFig. 8 — task provenance summary:")
	l, err := perfrecup.BuildLineage(art, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(l.Render())
}
