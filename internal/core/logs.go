package core

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's job-layer provenance keeps the raw scheduler and worker logs
// ("we keep the scheduler logs, which contain data about the
// connection/disconnection of the clients and workers, information,
// warnings, and eventual errors"). This file synthesizes those textual logs
// from the structured event streams so a run directory carries them too —
// the same lines a log-scraping pipeline (like the one behind Fig. 7) would
// parse.

type logLine struct {
	at   float64
	text string
}

func renderLines(lines []logLine) string {
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at < lines[j].at })
	var sb strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&sb, "%12.6f %s\n", l.at, l.text)
	}
	return sb.String()
}

// RenderSchedulerLog produces the scheduler's textual log: graph
// submissions, task erred events, steals, and graph completions.
func RenderSchedulerLog(art *RunArtifacts) (string, error) {
	var lines []logLine
	metas, err := DrainTopic(art.Broker, TopicTaskMeta)
	if err != nil {
		return "", err
	}
	graphSeen := map[int]bool{}
	graphCount := map[int]int{}
	graphAt := map[int]float64{}
	for _, m := range metas {
		tm := ParseTaskMeta(m)
		graphCount[tm.GraphID]++
		if !graphSeen[tm.GraphID] {
			graphSeen[tm.GraphID] = true
			graphAt[tm.GraphID] = tm.At.Seconds()
		}
	}
	for id, at := range graphAt {
		lines = append(lines, logLine{at, fmt.Sprintf(
			"INFO  - Receive graph %d (%d tasks) from client", id, graphCount[id])})
	}
	trans, err := DrainTopic(art.Broker, TopicTransitions)
	if err != nil {
		return "", err
	}
	for _, m := range trans {
		tr := ParseTransition(m)
		if tr.Location != "scheduler" {
			continue
		}
		switch {
		case tr.To == "erred":
			lines = append(lines, logLine{tr.At.Seconds(), fmt.Sprintf(
				"ERROR - Task %s marked erred (%s)", tr.Key, tr.Stimulus)})
		case tr.Stimulus == "retry":
			lines = append(lines, logLine{tr.At.Seconds(), fmt.Sprintf(
				"WARN  - Retrying task %s after failure", tr.Key)})
		}
	}
	steals, err := DrainTopic(art.Broker, TopicSteals)
	if err != nil {
		return "", err
	}
	for _, m := range steals {
		s := ParseSteal(m)
		lines = append(lines, logLine{s.At.Seconds(), fmt.Sprintf(
			"INFO  - Moving task %s from %s to %s (work stealing)", s.Key, s.Victim, s.Thief)})
	}
	graphs, err := DrainTopic(art.Broker, TopicGraphs)
	if err != nil {
		return "", err
	}
	for _, m := range graphs {
		lines = append(lines, logLine{num(m, "at"), fmt.Sprintf(
			"INFO  - Graph %d complete", int(num(m, "graph_id")))})
	}
	return renderLines(lines), nil
}

// RenderWorkerLog produces one worker's textual log: its warnings in the
// exact phrasing Dask workers emit (the strings log-scrapers match on).
func RenderWorkerLog(art *RunArtifacts, worker string) (string, error) {
	var lines []logLine
	warns, err := DrainTopic(art.Broker, TopicWarnings)
	if err != nil {
		return "", err
	}
	for _, m := range warns {
		w := ParseWarning(m)
		if w.Worker != worker {
			continue
		}
		switch w.Kind {
		case "unresponsive_event_loop":
			lines = append(lines, logLine{w.At.Seconds(), fmt.Sprintf(
				"WARN  - Event loop was unresponsive in Worker for %.2fs. This is often caused by long-running GIL-holding functions", w.Duration.Seconds())})
		case "gc_collection":
			lines = append(lines, logLine{w.At.Seconds(), fmt.Sprintf(
				"WARN  - full garbage collection took %.0f ms", 1000*w.Duration.Seconds())})
		default:
			lines = append(lines, logLine{w.At.Seconds(), "WARN  - " + w.Message})
		}
	}
	execs, err := DrainTopic(art.Broker, TopicExecutions)
	if err != nil {
		return "", err
	}
	n := 0
	for _, m := range execs {
		if str(m, "worker") == worker {
			n++
		}
	}
	lines = append(lines, logLine{0, fmt.Sprintf("INFO  - Start worker at %s", worker)})
	out := renderLines(lines)
	out += fmt.Sprintf("%12s INFO  - Worker executed %d tasks\n", "---", n)
	return out, nil
}

// WorkerAddrs lists the worker addresses observed in the run.
func (a *RunArtifacts) WorkerAddrs() ([]string, error) {
	execs, err := DrainTopic(a.Broker, TopicExecutions)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, m := range execs {
		set[str(m, "worker")] = true
	}
	hbs, err := DrainTopic(a.Broker, TopicHeartbeats)
	if err != nil {
		return nil, err
	}
	for _, m := range hbs {
		set[str(m, "worker")] = true
	}
	var out []string
	for w := range set {
		if w != "" {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out, nil
}
