// Package provenance defines the wire format of the WMS provenance stream:
// the Mofka topic names the collection plugins produce into, and the
// encode/parse pairs that turn the dask record types into Mofka event
// metadata and back.
//
// It is deliberately a leaf package (no dependency on internal/core or
// internal/perfrecup) so that every consumer of the stream — the in-run
// collector, the post-mortem PERFRECUP loaders, and the live monitoring
// subsystem (internal/live) — shares exactly one definition of the event
// schema. internal/core re-exports the names for compatibility.
package provenance

import (
	"fmt"

	"taskprov/internal/dask"
	"taskprov/internal/mofka"
	"taskprov/internal/sim"
)

// Mofka topic names used by the provenance plugins.
const (
	TopicTaskMeta    = "task-meta"
	TopicTransitions = "task-transitions"
	TopicExecutions  = "task-executions"
	TopicTransfers   = "transfers"
	TopicWarnings    = "warnings"
	TopicHeartbeats  = "heartbeats"
	TopicSteals      = "steals"
	TopicGraphs      = "graph-events"

	// TopicProxy carries pass-by-reference data-plane operations: blob
	// publishes, reference resolutions (with demand-to-arrival latency),
	// misses on dangling references, frees, and crash reclaims.
	TopicProxy = "proxy-store"

	// TopicSpeculation carries hedged-execution and adaptive-retry decisions:
	// duplicate launches, first-completion wins, loser cancellations (with
	// wasted seconds), promotions, RPC retries, and retry-budget exhaustion.
	TopicSpeculation = "speculation"

	// TopicAnomalies carries the live monitor's online findings back into
	// the event space, so anomalies are themselves provenance (see
	// internal/live).
	TopicAnomalies = "anomalies"
)

// AllTopics lists every topic the collection plugins produce into. It does
// NOT include TopicAnomalies, which is produced by the live monitor, not the
// WMS plugins.
func AllTopics() []string {
	return []string{
		TopicTaskMeta, TopicTransitions, TopicExecutions, TopicTransfers,
		TopicWarnings, TopicHeartbeats, TopicSteals, TopicGraphs, TopicProxy,
		TopicSpeculation,
	}
}

// seconds renders a virtual time as float seconds for event metadata.
func seconds(t sim.Time) float64 { return t.Seconds() }

// TaskMetaEvent encodes a TaskMeta as Mofka event metadata.
func TaskMetaEvent(m dask.TaskMeta) mofka.Metadata {
	deps := make([]any, len(m.Deps))
	for i, d := range m.Deps {
		deps[i] = string(d)
	}
	return mofka.Metadata{
		"key": string(m.Key), "prefix": m.Prefix, "group": m.Group,
		"graph_id": m.GraphID, "deps": deps, "at": seconds(m.At),
	}
}

// TransitionEvent encodes a Transition as Mofka event metadata.
func TransitionEvent(t dask.Transition) mofka.Metadata {
	return mofka.Metadata{
		"key": string(t.Key), "from": string(t.From), "to": string(t.To),
		"stimulus": t.Stimulus, "location": t.Location, "at": seconds(t.At),
	}
}

// ExecutionEvent encodes a TaskExecution as Mofka event metadata. File
// effects ride along only when the body wrote files, keeping compute-only
// streams byte-identical to earlier runs.
func ExecutionEvent(e dask.TaskExecution) mofka.Metadata {
	m := mofka.Metadata{
		"key": string(e.Key), "worker": e.Worker, "hostname": e.Hostname,
		"thread_id": e.ThreadID, "start": seconds(e.Start), "stop": seconds(e.Stop),
		"output_size": e.OutputSize, "graph_id": e.GraphID,
	}
	if len(e.Files) > 0 {
		files := make([]any, len(e.Files))
		for i, f := range e.Files {
			files[i] = map[string]any{"path": f.Path, "size_after": f.SizeAfter}
		}
		m["files"] = files
	}
	return m
}

// TransferEvent encodes a Transfer as Mofka event metadata. The proxy
// dimensions ride along only when set, keeping direct-plane streams
// byte-identical to pre-proxy runs.
func TransferEvent(t dask.Transfer) mofka.Metadata {
	m := mofka.Metadata{
		"key": string(t.Key), "from": t.From, "to": t.To, "bytes": t.Bytes,
		"start": seconds(t.Start), "stop": seconds(t.Stop), "same_node": t.SameNode,
	}
	if t.ViaProxy {
		m["via_proxy"] = true
		m["resolve_latency"] = seconds(t.ResolveLatency)
	}
	return m
}

// ProxyEventMeta encodes a ProxyEvent as Mofka event metadata.
func ProxyEventMeta(e dask.ProxyEvent) mofka.Metadata {
	return mofka.Metadata{
		"op": e.Op, "key": string(e.Key), "worker": e.Worker,
		"bytes": e.Bytes, "resident": e.Resident,
		"resolve_latency": seconds(e.ResolveLatency), "at": seconds(e.At),
	}
}

// WarningEvent encodes a Warning as Mofka event metadata.
func WarningEvent(w dask.Warning) mofka.Metadata {
	return mofka.Metadata{
		"kind": string(w.Kind), "worker": w.Worker, "hostname": w.Hostname,
		"at": seconds(w.At), "duration": seconds(w.Duration), "message": w.Message,
	}
}

// HeartbeatEvent encodes a WorkerMetrics sample as Mofka event metadata.
func HeartbeatEvent(m dask.WorkerMetrics) mofka.Metadata {
	return mofka.Metadata{
		"worker": m.Worker, "at": seconds(m.At), "memory": m.Memory,
		"executing": m.Executing, "ready": m.Ready,
	}
}

// StealEventMeta encodes a StealEvent as Mofka event metadata.
func StealEventMeta(s dask.StealEvent) mofka.Metadata {
	return mofka.Metadata{
		"key": string(s.Key), "victim": s.Victim, "thief": s.Thief, "at": seconds(s.At),
	}
}

// SpeculationEventMeta encodes a SpeculationEvent as Mofka event metadata.
// Optional dimensions ride along only when set, so retry records stay small
// and the stream layout is stable per event kind.
func SpeculationEventMeta(e dask.SpeculationEvent) mofka.Metadata {
	m := mofka.Metadata{"kind": e.Kind, "at": seconds(e.At)}
	if e.Key != "" {
		m["key"] = string(e.Key)
	}
	if e.Primary != "" {
		m["primary"] = e.Primary
	}
	if e.Duplicate != "" {
		m["duplicate"] = e.Duplicate
	}
	if e.Winner != "" {
		m["winner"] = e.Winner
	}
	if e.Wasted != 0 {
		m["wasted"] = seconds(e.Wasted)
	}
	if e.Attempt != 0 {
		m["attempt"] = e.Attempt
	}
	if e.Detail != "" {
		m["detail"] = e.Detail
	}
	return m
}

// GraphDoneEvent encodes a graph completion as Mofka event metadata.
func GraphDoneEvent(graphID int, at sim.Time) mofka.Metadata {
	return mofka.Metadata{"graph_id": graphID, "event": "done", "at": seconds(at)}
}

// ---- decoding ----

// Str extracts a string field from event metadata ("" when absent).
func Str(m mofka.Metadata, k string) string {
	s, _ := m[k].(string)
	return s
}

// Num extracts a numeric field from event metadata (0 when absent).
func Num(m mofka.Metadata, k string) float64 {
	switch v := m[k].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	case uint64:
		return float64(v)
	default:
		return 0
	}
}

// ParseTransition decodes metadata written by TransitionEvent.
func ParseTransition(m mofka.Metadata) dask.Transition {
	return dask.Transition{
		Key:      dask.TaskKey(Str(m, "key")),
		From:     dask.TaskState(Str(m, "from")),
		To:       dask.TaskState(Str(m, "to")),
		Stimulus: Str(m, "stimulus"),
		Location: Str(m, "location"),
		At:       sim.Seconds(Num(m, "at")),
	}
}

// ParseExecution decodes metadata written by ExecutionEvent.
func ParseExecution(m mofka.Metadata) dask.TaskExecution {
	var files []dask.FileEffect
	if raw, ok := m["files"].([]any); ok {
		for _, f := range raw {
			if fm, ok := f.(map[string]any); ok {
				files = append(files, dask.FileEffect{
					Path:      Str(fm, "path"),
					SizeAfter: int64(Num(fm, "size_after")),
				})
			}
		}
	}
	return dask.TaskExecution{
		Key:        dask.TaskKey(Str(m, "key")),
		Worker:     Str(m, "worker"),
		Hostname:   Str(m, "hostname"),
		ThreadID:   uint64(Num(m, "thread_id")),
		Start:      sim.Seconds(Num(m, "start")),
		Stop:       sim.Seconds(Num(m, "stop")),
		OutputSize: int64(Num(m, "output_size")),
		GraphID:    int(Num(m, "graph_id")),
		Files:      files,
	}
}

// ParseTransfer decodes metadata written by TransferEvent.
func ParseTransfer(m mofka.Metadata) dask.Transfer {
	sameNode, _ := m["same_node"].(bool)
	viaProxy, _ := m["via_proxy"].(bool)
	return dask.Transfer{
		Key:            dask.TaskKey(Str(m, "key")),
		From:           Str(m, "from"),
		To:             Str(m, "to"),
		Bytes:          int64(Num(m, "bytes")),
		Start:          sim.Seconds(Num(m, "start")),
		Stop:           sim.Seconds(Num(m, "stop")),
		SameNode:       sameNode,
		ViaProxy:       viaProxy,
		ResolveLatency: sim.Seconds(Num(m, "resolve_latency")),
	}
}

// ParseProxyEvent decodes metadata written by ProxyEventMeta.
func ParseProxyEvent(m mofka.Metadata) dask.ProxyEvent {
	return dask.ProxyEvent{
		Op:             Str(m, "op"),
		Key:            dask.TaskKey(Str(m, "key")),
		Worker:         Str(m, "worker"),
		Bytes:          int64(Num(m, "bytes")),
		Resident:       int64(Num(m, "resident")),
		ResolveLatency: sim.Seconds(Num(m, "resolve_latency")),
		At:             sim.Seconds(Num(m, "at")),
	}
}

// ParseWarning decodes metadata written by WarningEvent.
func ParseWarning(m mofka.Metadata) dask.Warning {
	return dask.Warning{
		Kind:     dask.WarningKind(Str(m, "kind")),
		Worker:   Str(m, "worker"),
		Hostname: Str(m, "hostname"),
		At:       sim.Seconds(Num(m, "at")),
		Duration: sim.Seconds(Num(m, "duration")),
		Message:  Str(m, "message"),
	}
}

// ParseTaskMeta decodes metadata written by TaskMetaEvent.
func ParseTaskMeta(m mofka.Metadata) dask.TaskMeta {
	var deps []dask.TaskKey
	if raw, ok := m["deps"].([]any); ok {
		for _, d := range raw {
			if s, ok := d.(string); ok {
				deps = append(deps, dask.TaskKey(s))
			}
		}
	}
	return dask.TaskMeta{
		Key:     dask.TaskKey(Str(m, "key")),
		Prefix:  Str(m, "prefix"),
		Group:   Str(m, "group"),
		GraphID: int(Num(m, "graph_id")),
		Deps:    deps,
		At:      sim.Seconds(Num(m, "at")),
	}
}

// ParseHeartbeat decodes metadata written by HeartbeatEvent.
func ParseHeartbeat(m mofka.Metadata) dask.WorkerMetrics {
	return dask.WorkerMetrics{
		Worker:    Str(m, "worker"),
		At:        sim.Seconds(Num(m, "at")),
		Memory:    int64(Num(m, "memory")),
		Executing: int(Num(m, "executing")),
		Ready:     int(Num(m, "ready")),
	}
}

// ParseSteal decodes metadata written by StealEventMeta.
func ParseSteal(m mofka.Metadata) dask.StealEvent {
	return dask.StealEvent{
		Key:    dask.TaskKey(Str(m, "key")),
		Victim: Str(m, "victim"),
		Thief:  Str(m, "thief"),
		At:     sim.Seconds(Num(m, "at")),
	}
}

// ParseSpeculationEvent decodes metadata written by SpeculationEventMeta.
func ParseSpeculationEvent(m mofka.Metadata) dask.SpeculationEvent {
	return dask.SpeculationEvent{
		Kind:      Str(m, "kind"),
		Key:       dask.TaskKey(Str(m, "key")),
		Primary:   Str(m, "primary"),
		Duplicate: Str(m, "duplicate"),
		Winner:    Str(m, "winner"),
		Wasted:    sim.Seconds(Num(m, "wasted")),
		Attempt:   int(Num(m, "attempt")),
		Detail:    Str(m, "detail"),
		At:        sim.Seconds(Num(m, "at")),
	}
}

// MustParse asserts an event's metadata decodes, panicking with context on
// corruption (events are produced by this same module).
func MustParse(ev mofka.Event) mofka.Metadata {
	m, err := ev.ParseMetadata()
	if err != nil {
		panic(fmt.Sprintf("provenance: corrupt event %s[%d]/%d: %v", ev.Topic, ev.Partition, ev.ID, err))
	}
	return m
}

// DrainTopic pulls every event of a topic and decodes its metadata.
func DrainTopic(b *mofka.Broker, topic string) ([]mofka.Metadata, error) {
	t, err := b.OpenTopic(topic)
	if err != nil {
		return nil, err
	}
	c, err := t.NewConsumer(mofka.ConsumerOptions{NoData: true})
	if err != nil {
		return nil, err
	}
	evs, err := c.Drain()
	if err != nil {
		return nil, err
	}
	out := make([]mofka.Metadata, len(evs))
	for i, ev := range evs {
		out[i] = MustParse(ev)
	}
	return out, nil
}
