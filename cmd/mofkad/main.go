// Command mofkad runs a standalone Mofka broker over TCP, exposing the
// event-streaming RPCs (create_topic, push, pull, commit) through the
// Mercury wire protocol. It is the deployment mode for consumers that run
// on different nodes than the instrumented workflow.
//
// With -data-dir the broker is backed by the durable segmented event log:
// every topic, event, and committed cursor persists under the directory,
// survives restarts (including crashes — torn segment tails are truncated
// on reopen), and can later be analyzed post-mortem with
// `perfrecup <cmd> <data-dir>`.
//
// With -live the daemon additionally runs the live monitoring subsystem
// (internal/live) against its own broker: streaming aggregates and online
// anomaly detection over the provenance topics, served on -live-http.
//
// Usage:
//
//	mofkad -listen 127.0.0.1:7777 [-config bedrock.json]
//	       [-data-dir /path/to/log] [-fsync batch|interval|never]
//	       [-live] [-live-http 127.0.0.1:9090]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"taskprov/internal/live"
	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mochi/mercury"
	"taskprov/internal/mofka"
	"taskprov/internal/mofka/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP listen address")
	configPath := flag.String("config", "", "optional bedrock JSON config (its address overrides -listen)")
	dataDir := flag.String("data-dir", "", "directory for the durable event log (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", "durable log fsync policy: batch|interval|never")
	liveMon := flag.Bool("live", false, "run the live monitor against this broker")
	liveHTTP := flag.String("live-http", "", "with -live, serve /snapshot /metrics /events on this address")
	flag.Parse()

	cfg := bedrock.DefaultConfig(*listen)
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = bedrock.ParseConfig(data)
		if err != nil {
			fatal(err)
		}
	}
	if mercury.IsLocal(cfg.Address) {
		fatal(fmt.Errorf("mofkad needs a TCP address, got %q", cfg.Address))
	}
	pol, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	dep, err := bedrock.Deploy(cfg, nil)
	if err != nil {
		fatal(err)
	}
	defer dep.Shutdown()

	broker, err := mofka.NewBrokerOptions(dep, mofka.Options{
		DataDir: *dataDir,
		WAL:     wal.Options{Sync: pol},
	})
	if err != nil {
		fatal(err)
	}
	broker.RegisterRPCs(dep.Endpoint())
	durability := "in-memory"
	if *dataDir != "" {
		durability = fmt.Sprintf("durable log %s (fsync=%s, %d topics recovered)",
			*dataDir, *fsync, len(broker.Topics()))
	}
	fmt.Printf("mofkad: serving on %s (yokan dbs: %v, warabi targets: %v, %s)\n",
		dep.Addr(), cfg.Yokan.Databases, cfg.Warabi.Targets, durability)

	var monitor *live.Monitor
	if *liveMon {
		monitor = live.NewMonitor(broker, live.MonitorOptions{
			Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, "mofkad: "+format+"\n", a...) },
		})
		if *liveHTTP != "" {
			srv, err := live.Serve(*liveHTTP, monitor)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Printf("mofkad: live monitor on http://%s (/snapshot /metrics /events)\n", srv.Addr())
		} else {
			fmt.Println("mofkad: live monitor attached")
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mofkad: shutting down")
	// Flush and fsync every partition log before the process exits, so a
	// clean shutdown loses nothing regardless of the fsync policy.
	if err := broker.Close(); err != nil {
		fatal(err)
	}
	if monitor != nil {
		// Broker is closed: the monitor drains what's left and exits.
		monitor.Stop()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mofkad:", err)
	os.Exit(1)
}
