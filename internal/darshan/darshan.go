// Package darshan reimplements the behaviour of the Darshan I/O
// characterization tool that the paper extends: a per-process runtime
// intercepts POSIX operations, accumulates per-file counters (the POSIX
// module) and full traces of individual operations (the DXT module), and
// serializes everything into a compact binary log at shutdown.
//
// The paper's extension is reproduced here: every DXT segment carries the
// POSIX thread (pthread) ID that issued the operation, so analysis can join
// I/O records with the WMS task that ran on that thread at that time
// (§III-E3). The DXT module also keeps Darshan's bounded trace buffers —
// including the truncation the paper hits on ResNet152 (footnote 9).
package darshan

import (
	"sort"
	"sync"

	"taskprov/internal/posixio"
	"taskprov/internal/sim"
)

// Config describes one instrumented process (one Dask worker in the paper's
// deployment: workers are separate POSIX processes).
type Config struct {
	JobID    string // scheduler job ID this process belongs to
	Rank     int    // process index within the job (worker index)
	Hostname string
	Exe      string // instrumented executable name

	// DXT controls the extended tracing module.
	DXTEnabled bool
	// DXTBufferSegments caps the total number of trace segments the DXT
	// module may record for this process; once exhausted, further segments
	// are dropped and the log is flagged partial — reproducing Darshan's
	// default instrumentation buffer limit that truncated the paper's
	// ResNet152 I/O counts. Zero means use DefaultDXTBufferSegments.
	DXTBufferSegments int

	// MaxFileRecords caps the per-module file record table, like Darshan's
	// DARSHAN_DEF_MOD_REC_COUNT: operations on files beyond the cap are
	// not tracked at all. Zero means DefaultMaxFileRecords.
	MaxFileRecords int

	// HeatmapDisabled turns off the always-on HEATMAP module (time-binned
	// read/write byte counts, Darshan >= 3.4).
	HeatmapDisabled bool
	// HeatmapBins sets the heatmap width (0 = DefaultHeatmapBins).
	HeatmapBins int

	// DXTAdaptiveSampling implements the paper's future-work idea of
	// "dynamically adjusting our data capture in response to changes in
	// workflow behavior": once the DXT buffer falls below a quarter of its
	// budget, only every 4th segment is recorded, stretching the remaining
	// memory over the rest of the run instead of truncating it outright.
	DXTAdaptiveSampling bool
}

// dxtSampleStride is the sampling rate in adaptive mode.
const dxtSampleStride = 4

// DefaultMaxFileRecords matches Darshan's default per-module record count.
const DefaultMaxFileRecords = 1024

// DefaultDXTBufferSegments approximates Darshan's default per-module memory
// budget expressed in segments.
const DefaultDXTBufferSegments = 16384

// Size-histogram bucket boundaries, matching Darshan's POSIX module
// SIZE_READ_*/SIZE_WRITE_* counter buckets.
var sizeBucketBounds = []int64{
	100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 4 << 20, 10 << 20, 100 << 20, 1 << 30,
}

// NumSizeBuckets is the number of access-size histogram buckets.
const NumSizeBuckets = 10

// SizeBucket returns the histogram bucket index for an access size.
func SizeBucket(n int64) int {
	for i, b := range sizeBucketBounds {
		if n < b {
			return i
		}
	}
	return NumSizeBuckets - 1
}

// SizeBucketLabel returns a human-readable label for bucket i.
func SizeBucketLabel(i int) string {
	labels := []string{
		"0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M",
		"1M-4M", "4M-10M", "10M-100M", "100M-1G", "1G+",
	}
	if i < 0 || i >= len(labels) {
		return "?"
	}
	return labels[i]
}

// Counters is the per-file POSIX-module record.
type Counters struct {
	Opens        int64
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64

	MaxByteRead    int64 // highest offset+len read
	MaxByteWritten int64

	ReadTime  float64 // cumulative seconds in reads
	WriteTime float64
	MetaTime  float64 // cumulative seconds in open/close

	OpenStart  float64 // first open start timestamp (seconds)
	CloseEnd   float64 // last close timestamp
	ReadStart  float64 // first read start; 0 if none
	ReadEnd    float64
	WriteStart float64
	WriteEnd   float64

	SizeHistRead  [NumSizeBuckets]int64
	SizeHistWrite [NumSizeBuckets]int64
}

// FileRecord combines the POSIX counters and DXT trace for one file.
type FileRecord struct {
	Path     string
	Counters Counters
	DXT      []Segment
}

// Runtime is the per-process instrumentation state. It implements
// posixio.Tracer. All methods are safe for concurrent use.
type Runtime struct {
	cfg Config

	mu             sync.Mutex
	files          map[string]*FileRecord
	heatmap        *Heatmap
	dxtBudget      int
	dxtInitial     int
	dxtSampleSkip  int
	dxtSampling    bool
	dxtDropped     int64
	recordsDropped int64
	totalReads     int64
	totalWrites    int64
	totalOpens     int64
	startClock     sim.Time
	endClock       sim.Time
	clockStarted   bool
}

// NewRuntime creates an instrumentation runtime.
func NewRuntime(cfg Config) *Runtime {
	if cfg.DXTBufferSegments <= 0 {
		cfg.DXTBufferSegments = DefaultDXTBufferSegments
	}
	if cfg.MaxFileRecords <= 0 {
		cfg.MaxFileRecords = DefaultMaxFileRecords
	}
	r := &Runtime{
		cfg:        cfg,
		files:      make(map[string]*FileRecord),
		dxtBudget:  cfg.DXTBufferSegments,
		dxtInitial: cfg.DXTBufferSegments,
	}
	if !cfg.HeatmapDisabled {
		r.heatmap = newHeatmap(cfg.HeatmapBins)
	}
	return r
}

var _ posixio.Tracer = (*Runtime)(nil)

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// record returns the file's record, creating it if the record table has
// room. It returns nil once the table is full (the operation goes
// unobserved, as in Darshan when its record memory is exhausted).
func (r *Runtime) record(path string) *FileRecord {
	fr, ok := r.files[path]
	if !ok {
		if len(r.files) >= r.cfg.MaxFileRecords {
			r.recordsDropped++
			return nil
		}
		fr = &FileRecord{Path: path}
		r.files[path] = fr
	}
	return fr
}

func (r *Runtime) touchClock(start, end sim.Time) {
	if !r.clockStarted || start < r.startClock {
		r.startClock = start
		r.clockStarted = true
	}
	if end > r.endClock {
		r.endClock = end
	}
}

// addSegment appends a DXT segment if the module is enabled and the buffer
// has room; otherwise the segment is dropped and counted. In adaptive mode
// the module downshifts to 1-in-N sampling when the budget runs low,
// trading uniform coverage for completeness of the tail.
func (r *Runtime) addSegment(fr *FileRecord, seg Segment) {
	if !r.cfg.DXTEnabled {
		return
	}
	if r.dxtBudget <= 0 {
		r.dxtDropped++
		return
	}
	if r.cfg.DXTAdaptiveSampling && !r.dxtSampling && r.dxtBudget*4 <= r.dxtInitial {
		r.dxtSampling = true
	}
	if r.dxtSampling {
		r.dxtSampleSkip++
		if r.dxtSampleSkip%dxtSampleStride != 0 {
			r.dxtDropped++
			return
		}
	}
	r.dxtBudget--
	fr.DXT = append(fr.DXT, seg)
}

// OpenEvent implements posixio.Tracer.
func (r *Runtime) OpenEvent(rec posixio.OpRecord, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchClock(rec.Start, rec.End)
	fr := r.record(rec.Path)
	if fr == nil {
		return
	}
	c := &fr.Counters
	c.Opens++
	r.totalOpens++
	c.MetaTime += (rec.End - rec.Start).Seconds()
	if c.OpenStart == 0 || rec.Start.Seconds() < c.OpenStart {
		c.OpenStart = rec.Start.Seconds()
	}
}

// ReadEvent implements posixio.Tracer.
func (r *Runtime) ReadEvent(rec posixio.OpRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchClock(rec.Start, rec.End)
	if r.heatmap != nil {
		r.heatmap.add(rec.End.Seconds(), rec.Bytes, false)
	}
	fr := r.record(rec.Path)
	if fr == nil {
		return
	}
	c := &fr.Counters
	c.Reads++
	r.totalReads++
	c.BytesRead += rec.Bytes
	if end := rec.Offset + rec.Bytes; end > c.MaxByteRead {
		c.MaxByteRead = end
	}
	c.ReadTime += (rec.End - rec.Start).Seconds()
	if c.ReadStart == 0 || rec.Start.Seconds() < c.ReadStart {
		c.ReadStart = rec.Start.Seconds()
	}
	if rec.End.Seconds() > c.ReadEnd {
		c.ReadEnd = rec.End.Seconds()
	}
	c.SizeHistRead[SizeBucket(rec.Bytes)]++
	r.addSegment(fr, Segment{
		Op: OpRead, TID: rec.TID, Offset: rec.Offset, Length: rec.Bytes,
		Start: rec.Start.Seconds(), End: rec.End.Seconds(),
	})
}

// WriteEvent implements posixio.Tracer.
func (r *Runtime) WriteEvent(rec posixio.OpRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchClock(rec.Start, rec.End)
	if r.heatmap != nil {
		r.heatmap.add(rec.End.Seconds(), rec.Bytes, true)
	}
	fr := r.record(rec.Path)
	if fr == nil {
		return
	}
	c := &fr.Counters
	c.Writes++
	r.totalWrites++
	c.BytesWritten += rec.Bytes
	if end := rec.Offset + rec.Bytes; end > c.MaxByteWritten {
		c.MaxByteWritten = end
	}
	c.WriteTime += (rec.End - rec.Start).Seconds()
	if c.WriteStart == 0 || rec.Start.Seconds() < c.WriteStart {
		c.WriteStart = rec.Start.Seconds()
	}
	if rec.End.Seconds() > c.WriteEnd {
		c.WriteEnd = rec.End.Seconds()
	}
	c.SizeHistWrite[SizeBucket(rec.Bytes)]++
	r.addSegment(fr, Segment{
		Op: OpWrite, TID: rec.TID, Offset: rec.Offset, Length: rec.Bytes,
		Start: rec.Start.Seconds(), End: rec.End.Seconds(),
	})
}

// CloseEvent implements posixio.Tracer.
func (r *Runtime) CloseEvent(rec posixio.OpRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchClock(rec.Start, rec.End)
	fr := r.record(rec.Path)
	if fr == nil {
		return
	}
	if ts := rec.End.Seconds(); ts > fr.Counters.CloseEnd {
		fr.Counters.CloseEnd = ts
	}
}

// Totals reports process-wide operation counts.
func (r *Runtime) Totals() (opens, reads, writes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalOpens, r.totalReads, r.totalWrites
}

// DXTSamplingActive reports whether adaptive sampling has engaged.
func (r *Runtime) DXTSamplingActive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dxtSampling
}

// DXTDropped reports how many trace segments were lost to the buffer limit.
func (r *Runtime) DXTDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dxtDropped
}

// RecordsDropped reports operations lost because the file record table was
// full.
func (r *Runtime) RecordsDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recordsDropped
}

// Snapshot produces the immutable log of everything recorded so far, sorted
// by path — the moment "darshan_shutdown" would run in the real tool.
func (r *Runtime) Snapshot() *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	log := &Log{
		Job: JobHeader{
			JobID:          r.cfg.JobID,
			Rank:           r.cfg.Rank,
			Hostname:       r.cfg.Hostname,
			Exe:            r.cfg.Exe,
			StartTime:      r.startClock.Seconds(),
			EndTime:        r.endClock.Seconds(),
			DXTEnabled:     r.cfg.DXTEnabled,
			DXTDropped:     r.dxtDropped,
			RecordsDropped: r.recordsDropped,
			Partial:        r.dxtDropped > 0 || r.recordsDropped > 0,
		},
	}
	log.Heatmap = r.heatmap.clone()
	for _, fr := range r.files {
		cp := *fr
		cp.DXT = append([]Segment(nil), fr.DXT...)
		log.Records = append(log.Records, cp)
	}
	sort.Slice(log.Records, func(i, j int) bool { return log.Records[i].Path < log.Records[j].Path })
	return log
}
