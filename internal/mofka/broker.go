package mofka

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"taskprov/internal/mochi/bedrock"
	"taskprov/internal/mochi/warabi"
	"taskprov/internal/mochi/yokan"
)

// Errors reported by the broker API.
var (
	ErrTopicExists  = errors.New("mofka: topic already exists")
	ErrNoTopic      = errors.New("mofka: no such topic")
	ErrNoPartition  = errors.New("mofka: no such partition")
	ErrClosed       = errors.New("mofka: closed")
	ErrInvalidEvent = errors.New("mofka: invalid event")
)

// Broker hosts topics on top of a bedrock deployment's Yokan and Warabi
// services. All methods are safe for concurrent use.
type Broker struct {
	meta *yokan.Database
	data *warabi.Target

	mu     sync.RWMutex
	topics map[string]*Topic
}

// NewBroker builds a broker on the deployment's "metadata" Yokan database
// and "data" Warabi target (creating them if the deployment config did not).
func NewBroker(dep *bedrock.Deployment) *Broker {
	return &Broker{
		meta:   dep.Yokan.Open("metadata"),
		data:   dep.Warabi.Target("data"),
		topics: make(map[string]*Topic),
	}
}

// NewStandaloneBroker builds a broker on fresh in-memory services, for uses
// that do not need a bedrock deployment (tests, embedded collection).
func NewStandaloneBroker() *Broker {
	return &Broker{
		meta:   yokan.NewDatabase("metadata"),
		data:   warabi.NewTarget("data"),
		topics: make(map[string]*Topic),
	}
}

// CreateTopic creates a topic. Partition count defaults to 1.
func (b *Broker) CreateTopic(cfg TopicConfig) (*Topic, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty topic name", ErrInvalidEvent)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTopicExists, cfg.Name)
	}
	t := &Topic{broker: b, cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		p := &Partition{
			topic: t,
			index: i,
			docs:  b.meta.Collection(fmt.Sprintf("topic/%s/p%04d", cfg.Name, i)),
		}
		p.cond = sync.NewCond(&p.mu)
		t.partitions = append(t.partitions, p)
	}
	// Record the topic in the KV space so it is discoverable post-mortem.
	cfgJSON, _ := json.Marshal(cfg)
	b.meta.Put("topics/"+cfg.Name, cfgJSON)
	b.topics[cfg.Name] = t
	return t, nil
}

// OpenTopic returns an existing topic.
func (b *Broker) OpenTopic(name string) (*Topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	return t, nil
}

// OpenOrCreateTopic opens the topic, creating it if absent.
func (b *Broker) OpenOrCreateTopic(cfg TopicConfig) (*Topic, error) {
	if t, err := b.OpenTopic(cfg.Name); err == nil {
		return t, nil
	}
	t, err := b.CreateTopic(cfg)
	if errors.Is(err, ErrTopicExists) {
		return b.OpenTopic(cfg.Name)
	}
	return t, err
}

// Topics lists topic names in sorted order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []string
	for n := range b.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CommitCursor durably records a consumer's next-unread offset.
func (b *Broker) CommitCursor(consumer, topic string, partition int, next uint64) {
	key := fmt.Sprintf("cursor/%s/%s/p%04d", consumer, topic, partition)
	val, _ := json.Marshal(next)
	b.meta.Put(key, val)
}

// LoadCursor returns a consumer's committed next-unread offset (0 if never
// committed).
func (b *Broker) LoadCursor(consumer, topic string, partition int) uint64 {
	key := fmt.Sprintf("cursor/%s/%s/p%04d", consumer, topic, partition)
	v, ok := b.meta.Get(key)
	if !ok {
		return 0
	}
	var next uint64
	if json.Unmarshal(v, &next) != nil {
		return 0
	}
	return next
}

// Topic is a named event stream divided into partitions.
type Topic struct {
	broker     *Broker
	cfg        TopicConfig
	partitions []*Partition
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.cfg.Name }

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.partitions) }

// Partition returns partition i.
func (t *Topic) Partition(i int) (*Partition, error) {
	if i < 0 || i >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %s[%d]", ErrNoPartition, t.cfg.Name, i)
	}
	return t.partitions[i], nil
}

// Events reports the total number of events across all partitions.
func (t *Topic) Events() uint64 {
	var n uint64
	for _, p := range t.partitions {
		n += p.Length()
	}
	return n
}

// Partition is one ordered shard of a topic.
type Partition struct {
	topic *Topic
	index int
	docs  *yokan.Collection

	mu     sync.Mutex
	cond   *sync.Cond
	length uint64
}

// Index returns the partition's index within its topic.
func (p *Partition) Index() int { return p.index }

// Length returns the number of events appended so far.
func (p *Partition) Length() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.length
}

// appendBatch persists a batch: payloads are concatenated into one Warabi
// region; each event's envelope goes into the Yokan collection.
func (p *Partition) appendBatch(metas [][]byte, datas [][]byte) error {
	if len(metas) != len(datas) {
		return fmt.Errorf("%w: %d metadata for %d data payloads", ErrInvalidEvent, len(metas), len(datas))
	}
	if len(metas) == 0 {
		return nil
	}
	var total int64
	for _, d := range datas {
		total += int64(len(d))
	}
	blob := make([]byte, 0, total)
	offsets := make([]int64, len(datas))
	for i, d := range datas {
		offsets[i] = int64(len(blob))
		blob = append(blob, d...)
	}
	region := p.topic.broker.data.CreateWrite(blob)

	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range metas {
		env := envelope{Meta: metas[i], Region: uint64(region), Offset: offsets[i], Size: int64(len(datas[i]))}
		doc, err := json.Marshal(&env)
		if err != nil {
			return fmt.Errorf("mofka: encode envelope: %w", err)
		}
		p.docs.Store(doc)
		p.length++
	}
	p.cond.Broadcast()
	return nil
}

// read returns up to max events starting at offset from. withData controls
// whether payloads are fetched from Warabi (Mofka's data-selection feature).
func (p *Partition) read(from uint64, max int, withData bool) ([]Event, error) {
	if withData {
		return p.readSelect(from, max, nil)
	}
	return p.readSelect(from, max, func([]byte) bool { return false })
}

// readSelect is read with per-event data selection: selector nil fetches
// every payload; otherwise only events whose metadata it accepts carry
// data.
func (p *Partition) readSelect(from uint64, max int, selector func([]byte) bool) ([]Event, error) {
	var out []Event
	var firstErr error
	p.docs.Iter(from, max, func(id uint64, doc []byte) bool {
		var env envelope
		if err := json.Unmarshal(doc, &env); err != nil {
			firstErr = fmt.Errorf("mofka: corrupt envelope %d: %w", id, err)
			return false
		}
		ev := Event{
			Topic:     p.topic.cfg.Name,
			Partition: p.index,
			ID:        id,
			Metadata:  append([]byte(nil), env.Meta...),
		}
		if (selector == nil || selector(ev.Metadata)) && env.Size > 0 {
			data, err := p.topic.broker.data.Read(warabi.RegionID(env.Region), env.Offset, env.Size)
			if err != nil {
				firstErr = fmt.Errorf("mofka: data for event %d: %w", id, err)
				return false
			}
			ev.Data = data
		}
		out = append(out, ev)
		return true
	})
	return out, firstErr
}

// waitForLength blocks until the partition holds more than n events or the
// deadline passes, and reports whether new events are available.
func (p *Partition) waitForLength(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.length <= n {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		// sync.Cond has no timed wait; poll with a short-lived waker.
		waker := time.AfterFunc(remaining, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		p.cond.Wait()
		waker.Stop()
	}
	return true
}
