GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The durable event log and broker are the concurrency-heavy paths; run them
# under the race detector.
race:
	$(GO) test -race ./internal/mofka/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Everything CI runs.
verify: build vet test race
