package dask

import (
	"strings"
	"testing"

	"taskprov/internal/sim"
)

func TestKeyPrefix(t *testing.T) {
	cases := map[TaskKey]string{
		"imread-0007":                         "imread",
		"('getitem-24266c', 63)":              "getitem",
		"read_parquet-fused-assign-a1b2":      "read_parquet-fused-assign",
		"normalize":                           "normalize",
		"random_split_take-3f2a":              "random_split_take",
		"('read_parquet-fused-assign-9c', 4)": "read_parquet-fused-assign",
	}
	for k, want := range cases {
		if got := KeyPrefix(k); got != want {
			t.Errorf("KeyPrefix(%q) = %q, want %q", k, got, want)
		}
	}
}

func TestKeyGroup(t *testing.T) {
	if got := KeyGroup("('getitem-24266c', 63)"); got != "getitem-24266c" {
		t.Errorf("KeyGroup tuple = %q", got)
	}
	if got := KeyGroup("imread-0007"); got != "imread-0007" {
		t.Errorf("KeyGroup plain = %q", got)
	}
}

func TestGraphTopoOrder(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "c", Deps: []TaskKey{"a", "b"}})
	g.Add(&TaskSpec{Key: "a"})
	g.Add(&TaskSpec{Key: "b", Deps: []TaskKey{"a"}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	order := g.Keys()
	pos := map[TaskKey]int{}
	for i, k := range order {
		pos[k] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("order = %v", order)
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a", Deps: []TaskKey{"b"}})
	g.Add(&TaskSpec{Key: "b", Deps: []TaskKey{"a"}})
	if err := g.Finalize(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestGraphMissingDepDetected(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a", Deps: []TaskKey{"ghost"}})
	if err := g.Finalize(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestGraphDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a"})
	g.Add(&TaskSpec{Key: "a"})
}

func TestRootsAndLeaves(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a"})
	g.Add(&TaskSpec{Key: "b", Deps: []TaskKey{"a"}})
	g.Add(&TaskSpec{Key: "c", Deps: []TaskKey{"a"}})
	roots, leaves := g.Roots(), g.Leaves()
	if len(roots) != 1 || roots[0] != "a" {
		t.Fatalf("roots = %v", roots)
	}
	if len(leaves) != 2 || leaves[0] != "b" || leaves[1] != "c" {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestFuseLinearChains(t *testing.T) {
	g := NewGraph(1)
	ran := []string{}
	g.Add(&TaskSpec{Key: "read_parquet-ab12", OutputSize: 10,
		Run: func(ctx *TaskContext) { ran = append(ran, "read") }})
	g.Add(&TaskSpec{Key: "assign-cd34", Deps: []TaskKey{"read_parquet-ab12"}, OutputSize: 200,
		Run: func(ctx *TaskContext) { ran = append(ran, "assign") }})
	g.Add(&TaskSpec{Key: "sum-ef56", Deps: []TaskKey{"assign-cd34"}})
	g.Add(&TaskSpec{Key: "other-99aa"})

	f := FuseLinearChains(g, 2)
	if f.Len() != 3 {
		t.Fatalf("fused graph has %d tasks, want 3: %v", f.Len(), f.Keys())
	}
	var fusedKey TaskKey
	for _, k := range f.Keys() {
		if strings.Contains(string(k), "fused") {
			fusedKey = k
		}
	}
	if fusedKey == "" {
		t.Fatalf("no fused task in %v", f.Keys())
	}
	if KeyPrefix(fusedKey) != "read_parquet-fused-assign" {
		t.Fatalf("fused prefix = %q (key %q)", KeyPrefix(fusedKey), fusedKey)
	}
	ft, _ := f.Task(fusedKey)
	if ft.OutputSize != 200 {
		t.Fatalf("fused output size = %d, want tail's 200", ft.OutputSize)
	}
	// sum must now depend on the fused task.
	st, ok := f.Task("sum-ef56")
	if !ok || len(st.Deps) != 1 || st.Deps[0] != fusedKey {
		t.Fatalf("sum deps = %+v", st)
	}
	// The fused body runs both bodies in order.
	ft.Run(nil)
	if len(ran) != 2 || ran[0] != "read" || ran[1] != "assign" {
		t.Fatalf("fused body ran %v", ran)
	}
}

func TestFuseRespectsMaxChain(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a-01"})
	g.Add(&TaskSpec{Key: "b-02", Deps: []TaskKey{"a-01"}})
	g.Add(&TaskSpec{Key: "c-03", Deps: []TaskKey{"b-02"}})
	g.Add(&TaskSpec{Key: "d-04", Deps: []TaskKey{"c-03"}})
	if f := FuseLinearChains(g, 1); f.Len() != 4 {
		t.Fatalf("maxChain=1 changed the graph: %d", f.Len())
	}
	f := FuseLinearChains(g, 4)
	if f.Len() != 1 {
		t.Fatalf("maxChain=4 left %d tasks: %v", f.Len(), f.Keys())
	}
	f2 := FuseLinearChains(g, 2)
	if f2.Len() != 2 {
		t.Fatalf("maxChain=2 left %d tasks: %v", f2.Len(), f2.Keys())
	}
}

func TestFuseKeepsBranchesIntact(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "src-01"})
	g.Add(&TaskSpec{Key: "l-02", Deps: []TaskKey{"src-01"}})
	g.Add(&TaskSpec{Key: "r-03", Deps: []TaskKey{"src-01"}})
	f := FuseLinearChains(g, 4)
	// src has two dependents: nothing can fuse.
	if f.Len() != 3 {
		t.Fatalf("branching graph fused to %d tasks", f.Len())
	}
}

func TestFusePreservesEstimates(t *testing.T) {
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "a-01", EstDuration: sim.Seconds(1)})
	g.Add(&TaskSpec{Key: "b-02", Deps: []TaskKey{"a-01"}, EstDuration: sim.Seconds(2), BlocksEventLoop: true})
	f := FuseLinearChains(g, 2)
	k := f.Keys()[0]
	ft, _ := f.Task(k)
	if ft.EstDuration != sim.Seconds(3) {
		t.Fatalf("fused estimate = %v", ft.EstDuration)
	}
	if !ft.BlocksEventLoop {
		t.Fatal("fused task lost BlocksEventLoop")
	}
}
