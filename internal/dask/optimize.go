package dask

import (
	"fmt"
	"strings"
)

// FuseLinearChains reproduces Dask's task-graph optimization that combines
// linear chains — a task whose single dependent has it as its single
// dependency — into one node. Dask applies this to I/O producers so data is
// consumed where it is read ("to enhance data locality", §IV-D3), producing
// the "read_parquet-fused-assign"-style task categories the paper observes
// dominating XGBoost's runtime.
//
// The fused task's body runs the chain's bodies in order on one worker
// thread; its output size is the tail's; its key is derived from the chain's
// prefixes joined with "-fused-" plus the tail's decoration, mirroring
// Dask's naming. Fusion is applied repeatedly until a fixed point, capped by
// maxChain (<=1 disables; Dask's default ave-width heuristics are
// approximated by a plain chain-length cap).
func FuseLinearChains(g *Graph, maxChain int) *Graph {
	if maxChain <= 1 {
		return g
	}
	// Build dependent counts.
	type node struct {
		spec       *TaskSpec
		dependents []TaskKey
	}
	nodes := make(map[TaskKey]*node, len(g.tasks))
	for k, t := range g.tasks {
		nodes[k] = &node{spec: t}
	}
	for k, t := range g.tasks {
		for _, d := range t.Deps {
			nodes[d].dependents = append(nodes[d].dependents, k)
		}
	}

	fusedInto := make(map[TaskKey]TaskKey) // member -> chain head key
	out := NewGraph(g.ID)

	// Walk in topological order so chain heads are visited before tails.
	visited := make(map[TaskKey]bool)
	for _, k := range g.Keys() {
		if visited[k] {
			continue
		}
		n := nodes[k]
		// A chain starts at a task that is not itself fusable into its
		// (single) dependency.
		chain := []*TaskSpec{n.spec}
		cur := n
		for len(chain) < maxChain {
			if len(cur.dependents) != 1 {
				break
			}
			next := nodes[cur.dependents[0]]
			if len(next.spec.Deps) != 1 {
				break
			}
			chain = append(chain, next.spec)
			cur = next
		}
		for _, m := range chain {
			visited[m.Key] = true
		}
		if len(chain) == 1 {
			spec := *n.spec
			out.Add(&spec)
			continue
		}
		head, tail := chain[0], chain[len(chain)-1]
		fkey := fusedKey(chain)
		for _, m := range chain {
			fusedInto[m.Key] = fkey
		}
		bodies := make([]TaskFunc, 0, len(chain))
		blocks := false
		estSum := head.EstDuration
		for i, m := range chain {
			if m.Run != nil {
				bodies = append(bodies, m.Run)
			} else if m.EstDuration > 0 {
				d := m.EstDuration
				bodies = append(bodies, func(ctx *TaskContext) { ctx.Compute(d) })
			}
			blocks = blocks || m.BlocksEventLoop
			if i > 0 {
				estSum += m.EstDuration
			}
		}
		fused := &TaskSpec{
			Key:             fkey,
			Deps:            append([]TaskKey(nil), head.Deps...),
			OutputSize:      tail.OutputSize,
			EstDuration:     estSum,
			BlocksEventLoop: blocks,
			Restrictions:    head.Restrictions,
			Run: func(ctx *TaskContext) {
				for _, b := range bodies {
					b(ctx)
				}
			},
		}
		out.Add(fused)
	}

	// Rewrite dependencies through the fusion map; chain members other than
	// heads have no surviving node, and edges into a chain member point to
	// the fused task. (Iterate the map directly: the graph cannot be
	// finalized until deps are rewritten.)
	for _, t := range out.tasks {
		seen := make(map[TaskKey]bool, len(t.Deps))
		deps := t.Deps[:0]
		for _, d := range t.Deps {
			if f, ok := fusedInto[d]; ok {
				d = f
			}
			if d == t.Key || seen[d] {
				continue
			}
			seen[d] = true
			deps = append(deps, d)
		}
		t.Deps = deps
	}
	if err := out.Finalize(); err != nil {
		panic(fmt.Sprintf("dask: fusion produced invalid graph: %v", err))
	}
	return out
}

// fusedKey builds the Dask-style fused task key from a chain of specs:
// distinct prefixes joined by "-fused-", then the tail's decoration.
func fusedKey(chain []*TaskSpec) TaskKey {
	var parts []string
	for _, m := range chain {
		p := m.Prefix()
		if len(parts) == 0 || parts[len(parts)-1] != p {
			parts = append(parts, p)
		}
	}
	stem := strings.Join(parts, "-fused-")
	tail := string(chain[len(chain)-1].Key)
	dec := ""
	if i := strings.LastIndex(tail, "-"); i >= 0 && isHashy(tail[i+1:]) {
		dec = tail[i:]
	}
	return TaskKey(stem + dec)
}
