package dask

import (
	"time"

	"taskprov/internal/platform"
	"taskprov/internal/sim"
)

var wallEpoch = time.Now()

// nowWall returns monotonic wall-clock nanoseconds, used by
// TaskContext.Measure to charge real computation to the virtual clock.
func nowWall() int64 { return int64(time.Since(wallEpoch)) }

// Client is the workflow driver's handle: it submits task graphs to the
// scheduler and waits for their completion, from inside a sim.Proc (the
// "client program").
type Client struct {
	c    *Cluster
	node *platform.Node

	waiters map[int]func() // graphID -> completion callback
	done    map[int]bool
	errs    map[int]string

	// Submission overheads model the client-side cost of building and
	// serializing the task graph ("creating the task graph" coordination
	// time in Fig. 3).
	SubmitBase    sim.Time
	SubmitPerTask sim.Time
}

func newClient(c *Cluster, node *platform.Node) *Client {
	return &Client{
		c: c, node: node,
		waiters:       make(map[int]func()),
		done:          make(map[int]bool),
		errs:          make(map[int]string),
		SubmitBase:    sim.Milliseconds(20),
		SubmitPerTask: sim.Microseconds(120),
	}
}

// Node returns the node the client runs on.
func (cl *Client) Node() *platform.Node { return cl.node }

// WaitForWorkers blocks the client process until n workers have connected
// (distributed.Client.wait_for_workers).
func (cl *Client) WaitForWorkers(p *sim.Proc, n int) {
	for cl.c.scheduler.ConnectedWorkers() < n {
		p.Sleep(sim.Milliseconds(100))
	}
}

// Submit sends a graph to the scheduler without waiting for completion.
// The graph must be finalizable; cross-graph dependencies must reference
// keys already in distributed memory.
func (cl *Client) Submit(p *sim.Proc, g *Graph) {
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	// Client-side graph construction/serialization cost.
	p.Sleep(cl.SubmitBase + sim.Time(int64(cl.SubmitPerTask)*int64(g.Len())))
	cl.c.control(cl.node, cl.c.scheduler.node, func() {
		cl.c.scheduler.handleGraph(g)
	})
}

// Wait blocks the client process until the given graph completes.
func (cl *Client) Wait(p *sim.Proc, graphID int) {
	if cl.done[graphID] {
		return
	}
	p.Await(func(done func()) {
		prev := cl.waiters[graphID]
		cl.waiters[graphID] = func() {
			if prev != nil {
				prev()
			}
			done()
		}
	})
}

// SubmitAndWait submits a graph and blocks until it completes — the
// "compute()" pattern of a sequential multi-graph workflow.
func (cl *Client) SubmitAndWait(p *sim.Proc, g *Graph) {
	cl.Submit(p, g)
	cl.Wait(p, g.ID)
}

// Gather pulls the results of the given keys back to the client process,
// returning the total bytes delivered. In the direct data plane each payload
// relays through the scheduler (distributed's gather(direct=False) default);
// with the proxy store enabled the scheduler answers with a reference and the
// payload streams peer-to-peer from the owning worker. Keys still computing
// are waited for; erred keys deliver zero bytes.
func (cl *Client) Gather(p *sim.Proc, keys []TaskKey) int64 {
	var total int64
	for _, key := range keys {
		k := key
		p.Await(func(done func()) {
			cl.c.control(cl.node, cl.c.scheduler.node, func() {
				cl.c.scheduler.handleGather(k, func(size int64) {
					total += size
					done()
				})
			})
		})
	}
	return total
}

// graphDone is invoked (via a control message) when the scheduler reports a
// graph finished (errMsg is non-empty if any task erred).
func (cl *Client) graphDone(graphID int, errMsg string) {
	cl.done[graphID] = true
	if errMsg != "" {
		cl.errs[graphID] = errMsg
	}
	if w := cl.waiters[graphID]; w != nil {
		delete(cl.waiters, graphID)
		w()
	}
}

// GraphDone reports whether the graph has completed.
func (cl *Client) GraphDone(graphID int) bool { return cl.done[graphID] }

// GraphError returns the failure message of a completed graph ("" when it
// succeeded), like gathering an erred future raises in Dask.
func (cl *Client) GraphError(graphID int) string { return cl.errs[graphID] }
