package core

import "taskprov/internal/whatif"

// WhatIfInput adapts the run's artifacts into the whatif extractor's input:
// the provenance broker, the Darshan logs for the I/O join, and the
// metadata fields that form the model's baseline configuration. It works
// for live artifacts, WAL replays, and post-mortem loads alike — whatever
// populated the RunArtifacts.
func (a *RunArtifacts) WhatIfInput() whatif.Input {
	return whatif.Input{
		Broker:              a.Broker,
		DarshanLogs:         a.DarshanLogs,
		Workflow:            a.Meta.Workflow,
		Seed:                a.Meta.Seed,
		Nodes:               a.Meta.Job.Nodes,
		WorkersPerNode:      a.Meta.Job.WorkersPerNode,
		ThreadsPerWorker:    a.Meta.Job.ThreadsPerWorker,
		StealEnabled:        a.Meta.DaskConfig.WorkStealing,
		ProxyThresholdBytes: a.Meta.DaskConfig.ProxyThresholdBytes,
		StartSeconds:        a.Meta.StartSeconds,
		WallSeconds:         a.Meta.WallSeconds,
	}
}

// ExtractModel fits the whatif cost model from the run's provenance.
func (a *RunArtifacts) ExtractModel() (*whatif.Model, error) {
	return whatif.Extract(a.WhatIfInput())
}
