module taskprov

go 1.22
