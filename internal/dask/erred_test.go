package dask

import (
	"fmt"
	"strings"
	"testing"

	"taskprov/internal/sim"
)

func TestTaskFailureMarksGraphErred(t *testing.T) {
	env := newEnv(1, smallCfg())
	g := NewGraph(1)
	g.Add(&TaskSpec{Key: "ok-01", EstDuration: sim.Milliseconds(20), OutputSize: 8})
	g.Add(&TaskSpec{Key: "boom-02", OutputSize: 8, Run: func(ctx *TaskContext) {
		ctx.Compute(sim.Milliseconds(10))
		ctx.Fail("synthetic failure")
	}})
	g.Add(&TaskSpec{Key: "child-03", Deps: []TaskKey{"boom-02"}, EstDuration: sim.Milliseconds(10), OutputSize: 8})
	g.Add(&TaskSpec{Key: "grandchild-04", Deps: []TaskKey{"child-03"}, EstDuration: sim.Milliseconds(10), OutputSize: 8})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if cl.GraphError(1) == "" {
			t.Error("graph error not surfaced")
		}
		if !strings.Contains(cl.GraphError(1), "boom-02") {
			t.Errorf("error = %q", cl.GraphError(1))
		}
	})
	s := env.c.Scheduler()
	if s.TaskState("boom-02") != StateErred {
		t.Fatalf("boom state = %s", s.TaskState("boom-02"))
	}
	// Failure propagates to waiting dependents, transitively.
	if s.TaskState("child-03") != StateErred || s.TaskState("grandchild-04") != StateErred {
		t.Fatalf("dependents = %s, %s", s.TaskState("child-03"), s.TaskState("grandchild-04"))
	}
	// Independent tasks still succeed.
	if !s.HasInMemory("ok-01") {
		t.Fatal("independent task lost")
	}
	// Only boom-02 executed among the failing chain.
	for _, e := range env.rec.execs {
		if e.Key == "child-03" || e.Key == "grandchild-04" {
			t.Fatalf("dependent %s executed after upstream failure", e.Key)
		}
	}
}

func TestTaskRetriesThenSucceeds(t *testing.T) {
	env := newEnv(1, smallCfg())
	attempts := 0
	g := NewGraph(1)
	g.Add(&TaskSpec{
		Key: "flaky-01", OutputSize: 8, MaxRetries: 3,
		Run: func(ctx *TaskContext) {
			attempts++
			ctx.Compute(sim.Milliseconds(10))
			if attempts < 3 {
				ctx.Fail("transient")
			}
		},
	})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if cl.GraphError(1) != "" {
			t.Errorf("flaky task with retries failed the graph: %s", cl.GraphError(1))
		}
	})
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !env.c.Scheduler().HasInMemory("flaky-01") {
		t.Fatal("retried task not in memory")
	}
	// The retry stimuli appear in the scheduler transition stream.
	retries := 0
	for _, tr := range env.rec.schedTrans {
		if tr.Key == "flaky-01" && tr.Stimulus == "retry" {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("retry transitions = %d, want 2", retries)
	}
}

func TestTaskRetriesExhausted(t *testing.T) {
	env := newEnv(1, smallCfg())
	attempts := 0
	g := NewGraph(1)
	g.Add(&TaskSpec{
		Key: "doomed-01", OutputSize: 8, MaxRetries: 2,
		Run: func(ctx *TaskContext) {
			attempts++
			ctx.Compute(sim.Milliseconds(5))
			ctx.Fail("permanent")
		},
	})
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
		if cl.GraphError(1) == "" {
			t.Error("exhausted retries did not fail the graph")
		}
	})
	if attempts != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestFailureDoesNotLeakThreads(t *testing.T) {
	env := newEnv(1, smallCfg())
	g := NewGraph(1)
	for i := 0; i < 20; i++ {
		i := i
		g.Add(&TaskSpec{
			Key: TaskKey(fmt.Sprintf("mixed-%03d", i)), OutputSize: 8,
			Run: func(ctx *TaskContext) {
				ctx.Compute(sim.Milliseconds(15))
				if i%3 == 0 {
					ctx.Fail("every third fails")
				}
			},
		})
	}
	env.runWorkflow(func(p *sim.Proc, cl *Client) {
		cl.SubmitAndWait(p, g)
	})
	// All workers' thread pools must be whole again.
	for _, w := range env.c.Workers() {
		if len(w.freeThreads) != env.c.Config().ThreadsPerWorker {
			t.Fatalf("worker %d has %d free threads, want %d",
				w.Rank(), len(w.freeThreads), env.c.Config().ThreadsPerWorker)
		}
	}
}
