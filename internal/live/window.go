package live

import "sort"

// WindowSnapshot is one time-window's worth of activity, as exposed by
// Summary.Windows: the streaming equivalent of perfrecup's §IV-D "zooming
// through a specific time period", maintained online over the sim clock.
type WindowSnapshot struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`

	TasksFinished  int     `json:"tasks_finished"`
	ComputeSeconds float64 `json:"compute_seconds"`

	Transfers     int   `json:"transfers"`
	TransferBytes int64 `json:"transfer_bytes"`

	IOOps   int   `json:"io_ops"`
	IOBytes int64 `json:"io_bytes"`

	Warnings map[string]int `json:"warnings,omitempty"`

	// WorkerIOBytes is the per-worker I/O volume inside the window, the
	// basis of the bandwidth-collapse detector.
	WorkerIOBytes map[string]int64 `json:"worker_io_bytes,omitempty"`
}

// windowBucket is one live ring slot. Buckets are recycled in place as the
// sim clock advances; epoch identifies which absolute window a slot
// currently holds.
type windowBucket struct {
	epoch int64 // floor(t / width); -1 = never used
	WindowSnapshot
}

// windowRing keeps the last n time windows of width seconds each, indexed by
// the sim clock. Events slightly out of order (older than the newest window
// but still inside the ring) land in their own bucket; events older than the
// ring are dropped — the cumulative aggregates are unaffected either way.
type windowRing struct {
	width    float64
	buckets  []windowBucket
	maxEpoch int64
}

func newWindowRing(width float64, n int) *windowRing {
	if width <= 0 {
		width = 10
	}
	if n <= 0 {
		n = 6
	}
	r := &windowRing{width: width, buckets: make([]windowBucket, n)}
	for i := range r.buckets {
		r.buckets[i].epoch = -1
	}
	return r
}

// bucket returns the bucket covering time t, advancing the ring as needed.
// It returns nil when t is older than the ring's horizon.
func (r *windowRing) bucket(t float64) *windowBucket {
	if t < 0 {
		return nil
	}
	epoch := int64(t / r.width)
	if epoch > r.maxEpoch {
		r.maxEpoch = epoch
	}
	if epoch <= r.maxEpoch-int64(len(r.buckets)) {
		return nil // fell off the back of the ring
	}
	b := &r.buckets[int(epoch%int64(len(r.buckets)))]
	if b.epoch != epoch {
		*b = windowBucket{epoch: epoch}
		b.From = float64(epoch) * r.width
		b.To = b.From + r.width
	}
	return b
}

// addWarning records one warning of the given kind at time t.
func (r *windowRing) addWarning(t float64, kind string) {
	if b := r.bucket(t); b != nil {
		if b.Warnings == nil {
			b.Warnings = make(map[string]int)
		}
		b.Warnings[kind]++
	}
}

// addWorkerIO records per-worker I/O volume at time t.
func (r *windowRing) addWorkerIO(t float64, worker string, bytes int64) {
	if b := r.bucket(t); b != nil {
		if b.WorkerIOBytes == nil {
			b.WorkerIOBytes = make(map[string]int64)
		}
		b.WorkerIOBytes[worker] += bytes
	}
}

// snapshot returns copies of the populated windows, oldest first.
func (r *windowRing) snapshot() []WindowSnapshot {
	var out []WindowSnapshot
	for i := range r.buckets {
		b := &r.buckets[i]
		// Skip empty slots and slots whose window has already fallen off the
		// back of the ring but has not been recycled yet — bucket() rejects
		// new events for those epochs, so exposing them would show windows
		// that silently stopped accumulating.
		if b.epoch < 0 || b.epoch <= r.maxEpoch-int64(len(r.buckets)) {
			continue
		}
		ws := b.WindowSnapshot
		ws.Warnings = copyIntMap(b.Warnings)
		ws.WorkerIOBytes = copyInt64Map(b.WorkerIOBytes)
		out = append(out, ws)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].From < out[b].From })
	return out
}

func copyIntMap(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyInt64Map(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
