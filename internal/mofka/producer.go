package mofka

import (
	"fmt"
	"sync"
	"time"
)

// ProducerOptions tunes batching. Mofka's real producer batches events and
// ships them with background threads; the same knobs exist here.
type ProducerOptions struct {
	// BatchSize flushes a partition's pending batch when it reaches this
	// many events. Default 128.
	BatchSize int
	// MaxBatchBytes flushes when pending payload bytes reach this size.
	// Default 4 MiB.
	MaxBatchBytes int64
	// FlushInterval, when positive, starts a background goroutine flushing
	// all partitions periodically. Zero (default) means size-triggered and
	// manual flushes only — the deterministic mode simulations use.
	FlushInterval time.Duration
	// Partitioner picks the partition for an event. The default cycles
	// round-robin, matching Mofka's default.
	Partitioner func(metadata []byte, partitions int) int
}

func (o *ProducerOptions) setDefaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 4 << 20
	}
}

// Producer pushes events into a topic with batching. Safe for concurrent
// use.
type Producer struct {
	topic *Topic
	opts  ProducerOptions

	mu      sync.Mutex
	pending []pendingBatch
	rr      int
	closed  bool
	pushed  uint64
	flushes uint64

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

type pendingBatch struct {
	metas [][]byte
	datas [][]byte
	bytes int64
}

// NewProducer creates a producer for the topic.
func (t *Topic) NewProducer(opts ProducerOptions) *Producer {
	opts.setDefaults()
	p := &Producer{
		topic:   t,
		opts:    opts,
		pending: make([]pendingBatch, len(t.partitions)),
	}
	if opts.FlushInterval > 0 {
		p.stopFlusher = make(chan struct{})
		p.flusherDone = make(chan struct{})
		go p.flushLoop()
	}
	return p
}

func (p *Producer) flushLoop() {
	defer close(p.flusherDone)
	tick := time.NewTicker(p.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.Flush() //nolint:errcheck // periodic flush retries next tick
		case <-p.stopFlusher:
			return
		}
	}
}

// Push enqueues one event. The metadata and data slices are copied. The
// event becomes visible to consumers after its batch flushes (by size
// trigger, interval, Flush, or Close).
func (p *Producer) Push(metadata Metadata, data []byte) error {
	return p.PushRaw(metadata.Encode(), data)
}

// PushRaw enqueues one event with pre-encoded JSON metadata.
func (p *Producer) PushRaw(metadata, data []byte) error {
	if v := p.topic.cfg.Validator; v != nil {
		if err := v(metadata); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidEvent, err)
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	var idx int
	if p.opts.Partitioner != nil {
		idx = p.opts.Partitioner(metadata, len(p.topic.partitions))
		if idx < 0 || idx >= len(p.topic.partitions) {
			p.mu.Unlock()
			return fmt.Errorf("%w: partitioner chose %d of %d", ErrNoPartition, idx, len(p.topic.partitions))
		}
	} else {
		idx = p.rr
		p.rr = (p.rr + 1) % len(p.topic.partitions)
	}
	b := &p.pending[idx]
	b.metas = append(b.metas, append([]byte(nil), metadata...))
	b.datas = append(b.datas, append([]byte(nil), data...))
	b.bytes += int64(len(data))
	p.pushed++
	needFlush := len(b.metas) >= p.opts.BatchSize || b.bytes >= p.opts.MaxBatchBytes
	var metas, datas [][]byte
	if needFlush {
		metas, datas = b.metas, b.datas
		p.pending[idx] = pendingBatch{}
		p.flushes++
	}
	p.mu.Unlock()
	if needFlush {
		return p.topic.partitions[idx].appendBatch(metas, datas)
	}
	return nil
}

// Flush ships every pending batch.
func (p *Producer) Flush() error {
	p.mu.Lock()
	type job struct {
		idx          int
		metas, datas [][]byte
	}
	var jobs []job
	for i := range p.pending {
		if len(p.pending[i].metas) > 0 {
			jobs = append(jobs, job{i, p.pending[i].metas, p.pending[i].datas})
			p.pending[i] = pendingBatch{}
			p.flushes++
		}
	}
	p.mu.Unlock()
	for _, j := range jobs {
		if err := p.topic.partitions[j.idx].appendBatch(j.metas, j.datas); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes pending events and stops the background flusher. Further
// pushes fail with ErrClosed.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	if p.stopFlusher != nil {
		close(p.stopFlusher)
		<-p.flusherDone
	}
	return p.Flush()
}

// Stats reports events pushed and batches flushed, for overhead ablations.
func (p *Producer) Stats() (pushed, flushes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pushed, p.flushes
}
